/**
 * @file
 * Protocol-pluggable coherence: the CoherenceProtocol interface and the
 * cache-geometry parameters shared by every backend.
 *
 * LASER's whole detection signal is the HITM event, so the robustness
 * question "does accuracy hold under a different coherence fabric?"
 * requires the fabric to be swappable. A CoherenceProtocol classifies
 * every memory access into an AccessOutcome (sim/coherence.h); the
 * machine charges latency from the outcome and raises HITM events for
 * the two HITM outcomes. Two backends are provided:
 *
 *  - MesiDirectory (sim/protocol_mesi.h): the invalidation-based
 *    directory-MESI model, transition-identical to the original
 *    CoherenceDirectory, plus optional capacity/eviction modeling.
 *  - DragonBus (sim/protocol_dragon.h): a snooping update-based Dragon
 *    protocol (E/Sc/Sm/M) in which HITM outcomes fall out of real
 *    M/Sm-state dirty interventions instead of invalidations.
 *
 * CacheGeometry makes line size (and, per protocol, capacity) a
 * first-class simulated parameter; it participates in the LSRT hashed
 * config section so trace-cache keys can never collide across
 * protocols or geometries.
 */

#ifndef LASER_SIM_PROTOCOL_H
#define LASER_SIM_PROTOCOL_H

#include <cstdint>
#include <memory>
#include <string>

#include "sim/coherence.h"

namespace laser::sim {

/** Selectable coherence backend. */
enum class ProtocolKind : std::uint8_t {
    Mesi = 0,   ///< invalidation-based directory MESI (the default)
    Dragon = 1, ///< snooping update-based Dragon (E/Sc/Sm/M)
};

/** Printable name ("mesi", "dragon"). */
const char *protocolName(ProtocolKind kind);

/** Parse a protocol name; returns false (and leaves @p out alone) on an
 *  unknown name. */
bool parseProtocol(const std::string &name, ProtocolKind *out);

/**
 * Simulated cache geometry. The default (64-byte lines, unbounded
 * capacity) reproduces the original hard-coded model bit-for-bit.
 * Capacity is optional per protocol: MESI models per-core LRU eviction
 * when bounded; Dragon is capacity-less by design (an update protocol
 * keeps every sharer's copy live).
 */
struct CacheGeometry
{
    /** Cache line size in bytes; a power of two in [8, 128]. The upper
     *  bound keeps a line's byte count within HitmEvent::accessSize. */
    std::uint32_t lineBytes = 64;
    /** Cache sets per core; 0 = unbounded (no eviction modeling). */
    std::uint32_t sets = 0;
    /** Ways per set; 0 = unbounded. */
    std::uint32_t associativity = 0;

    /** True when capacity (and therefore eviction) is modeled. */
    bool bounded() const { return sets > 0 && associativity > 0; }

    /** True for a representable line size (power of two in [8, 128]). */
    bool
    valid() const
    {
        return lineBytes >= 8 && lineBytes <= 128 &&
               (lineBytes & (lineBytes - 1)) == 0;
    }
};

/**
 * One coherence backend: classifies accesses, tracks per-line sharing
 * state, and self-checks its protocol invariants (fuzzed by the
 * property tests over random interleavings).
 */
class CoherenceProtocol
{
  public:
    CoherenceProtocol(int num_cores, const CacheGeometry &geometry);
    virtual ~CoherenceProtocol() = default;

    CoherenceProtocol(const CoherenceProtocol &) = delete;
    CoherenceProtocol &operator=(const CoherenceProtocol &) = delete;

    /** Which backend this is. */
    virtual ProtocolKind kind() const = 0;

    /**
     * Perform one access and update protocol state. Parameter meaning
     * matches CoherenceDirectory::access: @p is_load_class selects the
     * HITM flavour (and thus PEBS record precision, Section 3.1).
     */
    virtual AccessOutcome access(int core, std::uint64_t addr,
                                 bool is_write, bool is_load_class) = 0;

    /** Validate all protocol invariants; false on the first violation. */
    virtual bool checkInvariants() const = 0;

    /** Number of lines tracked. */
    virtual std::size_t linesTouched() const = 0;

    /** Line address (upper bits) for a byte address. */
    std::uint64_t lineOf(std::uint64_t addr) const
    {
        return addr >> lineShift_;
    }

    /** Cache line size in bytes. */
    std::uint64_t lineBytes() const { return geometry_.lineBytes; }

    int numCores() const { return numCores_; }
    const CacheGeometry &geometry() const { return geometry_; }

  protected:
    int numCores_;
    CacheGeometry geometry_;
    std::uint32_t lineShift_;
};

/** Construct the backend for @p kind. Invalid geometry falls back to
 *  the default (the machine validates up front; this is a backstop). */
std::unique_ptr<CoherenceProtocol>
makeProtocol(ProtocolKind kind, int num_cores,
             const CacheGeometry &geometry = {});

} // namespace laser::sim

#endif // LASER_SIM_PROTOCOL_H
