/**
 * @file
 * Software store buffer (SSB) — the core of LASERREPAIR (Section 5).
 *
 * Stores modified to use the SSB write into this thread-private structure
 * instead of shared memory; loads snoop it first; an explicit flush
 * publishes all buffered bytes. Two implementations are provided:
 *
 *  - Coalescing (the paper's choice, Section 5.5): one slot per 8-byte
 *    memory chunk with a per-byte valid bitmap. Space-efficient — millions
 *    of stores collapse into a handful of entries — but individual-entry
 *    flushing could reorder stores illegally under TSO, so the flush must
 *    be strongly atomic (one hardware transaction).
 *  - Fifo (the ablation baseline): a queue with one entry per store.
 *    Trivially TSO-correct to drain in order, but impractically large
 *    between flushes; bench_ablation_ssb quantifies the difference.
 *
 * A per-byte bitmap records which bytes are valid within an entry so
 * unaligned and partial-overlap accesses are handled correctly
 * (Section 5.1).
 */

#ifndef LASER_SIM_SSB_H
#define LASER_SIM_SSB_H

#include <cstdint>
#include <map>
#include <vector>

namespace laser::sim {

/** SSB implementation strategy. */
enum class SsbMode : std::uint8_t {
    Coalescing, ///< one slot per 8-byte chunk (paper design)
    Fifo,       ///< one entry per store (ablation baseline)
};

/** One drained store-buffer entry, ready to apply to memory. */
struct SsbDrainEntry
{
    std::uint64_t addr = 0;    ///< base byte address of the chunk
    std::uint8_t validMask = 0;///< bit i set => byte addr+i is valid
    std::uint8_t bytes[8] = {};
    std::uint64_t minSeq = 0;  ///< lowest store sequence merged in
    std::uint64_t maxSeq = 0;  ///< highest store sequence merged in
};

/** Thread-private software store buffer. */
class SoftwareStoreBuffer
{
  public:
    explicit SoftwareStoreBuffer(SsbMode mode = SsbMode::Coalescing)
        : mode_(mode)
    {
    }

    /** Buffer a store of @p size bytes of @p value at @p addr. */
    void put(std::uint64_t addr, int size, std::uint64_t value,
             std::uint64_t seq);

    /**
     * True if every byte of [addr, addr+size) is buffered; if so, @p value
     * receives the buffered data.
     */
    bool getFull(std::uint64_t addr, int size, std::uint64_t *value) const;

    /** True if any byte of [addr, addr+size) is buffered. */
    bool containsAny(std::uint64_t addr, int size) const;

    /**
     * Overlay buffered bytes onto @p mem_value (the value read from
     * memory), returning the TSO-correct merged load result.
     */
    std::uint64_t merge(std::uint64_t addr, int size,
                        std::uint64_t mem_value) const;

    /**
     * Remove and return all entries, ordered by chunk address
     * (coalescing) or store order (fifo).
     */
    std::vector<SsbDrainEntry> drain();

    /** Number of occupied slots (chunks or queued stores). */
    std::size_t entryCount() const;

    bool empty() const { return entryCount() == 0; }

    SsbMode mode() const { return mode_; }

    /** Total stores buffered since construction (for stats/ablation). */
    std::uint64_t totalPuts() const { return totalPuts_; }

  private:
    struct Slot
    {
        std::uint8_t validMask = 0;
        std::uint8_t bytes[8] = {};
        std::uint64_t minSeq = 0;
        std::uint64_t maxSeq = 0;
    };

    void putByte(std::uint64_t addr, std::uint8_t byte, std::uint64_t seq);
    const Slot *slotFor(std::uint64_t chunk) const;

    SsbMode mode_;
    // Keyed by addr >> 3; std::map keeps drain order deterministic.
    std::map<std::uint64_t, Slot> slots_;

    struct FifoEntry
    {
        std::uint64_t addr;
        std::uint8_t size;
        std::uint64_t value;
        std::uint64_t seq;
    };
    std::vector<FifoEntry> fifo_;

    std::uint64_t totalPuts_ = 0;
};

} // namespace laser::sim

#endif // LASER_SIM_SSB_H
