/**
 * @file
 * The simulated multicore machine: an interpreter for the IR with a
 * pluggable coherence protocol (MESI directory by default, Dragon via
 * MachineConfig::protocol), a cycle cost model, SSB-aware execution,
 * and PMU callbacks.
 *
 * Scheduling is event-driven lowest-clock-first: at every step the
 * runnable thread with the smallest core clock executes one instruction
 * and advances its clock by that instruction's cost. This makes timing
 * feedback shape interleavings the way real contention does (a core
 * stalled on a HITM transfer falls behind and its rival gets ahead),
 * while staying fully deterministic.
 */

#ifndef LASER_SIM_MACHINE_H
#define LASER_SIM_MACHINE_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "isa/program.h"
#include "mem/address_space.h"
#include "mem/allocator.h"
#include "mem/memory.h"
#include "sim/hitm.h"
#include "sim/protocol.h"
#include "sim/ssb.h"
#include "sim/timing.h"
#include "util/rng.h"

namespace laser::sim {

/** Machine configuration. */
struct MachineConfig
{
    /** Core (== thread) count; the paper's machine has 4 cores. */
    int numCores = 4;
    TimingModel timing{};
    /** Coherence backend (protocol sweeps; MESI reproduces the paper). */
    ProtocolKind protocol = ProtocolKind::Mesi;
    /** Simulated cache geometry (line size; optional capacity). */
    CacheGeometry geometry{};
    /**
     * Seed for the per-thread timing jitter. Real machines perturb
     * per-access latency (prefetchers, DRAM refresh, TLB walks); without
     * a little jitter the deterministic lockstep scheduler can resonate
     * with the PEBS sample-after value and bias sampling to one core.
     * Runs remain bit-reproducible for a fixed seed.
     */
    std::uint64_t seed = 0x1a5e2;
    /** Enable the +-1 cycle memory-latency jitter. */
    bool latencyJitter = true;
    /** Runaway-program guard. */
    std::uint64_t maxInstructions = 400'000'000;
    /**
     * Bytes added to the initial heap break before the first allocation;
     * models the incidental layout shift of running under LASER
     * (Section 7.4.2, lu_ncb).
     */
    std::uint64_t heapPerturbation = 0;
    /**
     * Sheriff execution model: non-atomic accesses bypass coherence
     * (each thread works on its private copy), atomics stay shared.
     */
    bool threadsAsProcesses = false;
    /** Track pages dirtied between sync points (Sheriff diff costs). */
    bool trackDirtyPages = false;
    /** Pre-emptive SSB flush threshold (L1 associativity, Section 5.5). */
    int ssbMaxEntries = 8;
    SsbMode ssbMode = SsbMode::Coalescing;
    /** Record the store-visibility trace for TSO property tests. */
    bool recordTsoTrace = false;
};

/**
 * One store-visibility event: a group of stores by one thread became
 * globally visible atomically. Direct stores are singleton groups; a
 * transactional SSB flush is one group covering all buffered stores.
 */
struct TsoEvent
{
    int tid = 0;
    std::uint64_t minSeq = 0;
    std::uint64_t maxSeq = 0;
    std::uint64_t count = 0;
};

/** Aggregate statistics of one machine run. */
struct MachineStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t atomics = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t memMisses = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t rfos = 0;
    std::uint64_t hitmLoads = 0;
    std::uint64_t hitmStores = 0;
    std::uint64_t syncOps = 0;
    std::uint64_t ssbStores = 0;
    std::uint64_t ssbLoadHits = 0;
    std::uint64_t ssbFlushes = 0;
    std::uint64_t ssbFlushedEntries = 0;
    std::uint64_t ssbMaxEntriesSeen = 0;
    std::uint64_t aliasChecks = 0;
    std::uint64_t aliasMisspecs = 0;
    /** True if the run hit the maxInstructions guard. */
    bool truncated = false;
    std::vector<std::uint64_t> threadCycles;
    std::vector<std::uint64_t> threadInstructions;

    std::uint64_t hitmTotal() const { return hitmLoads + hitmStores; }

    /** Represented seconds of this run (after time compression). */
    double seconds() const { return representedSeconds(cycles); }
};

/** The simulated machine. */
class Machine
{
  public:
    explicit Machine(isa::Program prog, MachineConfig cfg = {});

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    mem::Memory &memory() { return mem_; }
    const mem::Memory &memory() const { return mem_; }
    mem::BumpAllocator &heap() { return heap_; }
    mem::BumpAllocator &globalsAllocator() { return globals_; }
    const mem::AddressSpace &addressSpace() const { return space_; }
    const isa::Program &program() const { return prog_; }
    const MachineConfig &config() const { return cfg_; }
    /** The coherence backend (MESI directory, Dragon bus, ...). */
    const CoherenceProtocol &protocol() const { return *proto_; }

    /** Install the PMU observer (PEBS / VTune / Sheriff model). */
    void setPmuSink(PmuSink *sink) { sink_ = sink; }

    /** Run all threads to completion; returns the run statistics. */
    MachineStats run();

    /** Register value of thread @p tid after run() (for tests). */
    std::int64_t reg(int tid, isa::Reg r) const;

    /** Store-visibility trace (only populated when recordTsoTrace). */
    const std::vector<TsoEvent> &tsoTrace() const { return tsoTrace_; }

  private:
    struct ThreadCtx
    {
        explicit ThreadCtx(SsbMode mode) : ssb(mode) {}

        std::array<std::int64_t, isa::kNumRegs> regs{};
        std::uint32_t pc = 0;
        std::uint64_t clock = 0;
        std::uint64_t instructions = 0;
        std::uint64_t storeSeq = 0;
        bool halted = false;
        int tid = 0;
        SoftwareStoreBuffer ssb;
        std::unordered_set<std::uint64_t> dirtyPages;
        laser::Rng rng;
    };

    void setReg(ThreadCtx &t, isa::Reg r, std::int64_t v);
    /** One coherence-visible memory access; returns its cycle cost. */
    std::uint64_t memAccess(ThreadCtx &t, std::uint64_t addr, int size,
                            bool is_write, bool is_load_class,
                            bool is_atomic);
    std::uint64_t flushSsb(ThreadCtx &t);
    std::uint64_t syncComplete(ThreadCtx &t, isa::SyncKind kind);
    void traceVisibility(ThreadCtx &t, std::uint64_t min_seq,
                         std::uint64_t max_seq, std::uint64_t count);
    void execute(ThreadCtx &t);

    isa::Program prog_;
    MachineConfig cfg_;
    mem::Memory mem_;
    mem::AddressSpace space_;
    mem::BumpAllocator heap_;
    mem::BumpAllocator globals_;
    std::unique_ptr<CoherenceProtocol> proto_;
    std::vector<ThreadCtx> threads_;
    PmuSink *sink_ = nullptr;
    MachineStats stats_;
    std::vector<TsoEvent> tsoTrace_;
    bool ran_ = false;
};

} // namespace laser::sim

#endif // LASER_SIM_MACHINE_H
