/**
 * @file
 * Timing model of the simulated 4-core Haswell-class machine.
 *
 * The paper's platform is a 4-core Intel i7-4770K at 3.4 GHz (Section 7).
 * Costs here are representative latencies in core cycles; what matters for
 * reproducing the paper's *shapes* is the ordering (L1 hit << LLC hit <<
 * HITM cache-to-cache transfer ~ memory) and the relative cost of software
 * components (PEBS assists, interrupts, SSB operations).
 *
 * Time compression: the paper's benchmark runs last minutes; our kernels
 * compress the same sharing structure into a few million simulated cycles.
 * kTimeCompression rescales simulated time so that event *rates* (HITMs
 * per second) are comparable to the paper's thresholds (e.g. the 1K
 * HITMs/sec default of Section 7.1). See EXPERIMENTS.md.
 */

#ifndef LASER_SIM_TIMING_H
#define LASER_SIM_TIMING_H

#include <cstdint>

namespace laser::sim {

/** Core clock of the simulated machine, GHz (i7-4770K). */
constexpr double kClockGHz = 3.4;

/**
 * Simulated-to-represented time scale factor: one simulated second of our
 * compressed kernels represents kTimeCompression seconds of the paper's
 * native-input runs.
 */
constexpr double kTimeCompression = 3000.0;

/** Represented wall-clock seconds for a cycle count (after compression). */
inline double
representedSeconds(std::uint64_t cycles)
{
    return static_cast<double>(cycles) / (kClockGHz * 1e9) *
           kTimeCompression;
}

/** Latency/cost constants, in cycles. */
struct TimingModel
{
    // ------------------------------------------------------------------
    // Core execution
    // ------------------------------------------------------------------
    std::uint32_t base = 1;         ///< every instruction
    std::uint32_t pauseCost = 8;    ///< PAUSE spin hint
    std::uint32_t fenceCost = 12;   ///< MFENCE drain
    std::uint32_t atomicExtra = 15; ///< LOCK-prefix overhead on top of RFO

    // ------------------------------------------------------------------
    // Memory hierarchy (added to base for memory operations)
    // ------------------------------------------------------------------
    std::uint32_t l1Hit = 3;
    std::uint32_t llcHit = 30;
    std::uint32_t memMiss = 150;
    std::uint32_t hitm = 100;       ///< remote-M cache-to-cache transfer
    std::uint32_t upgrade = 45;     ///< S->M ownership upgrade
    std::uint32_t rfoShared = 60;   ///< I->M with remote sharers/E copy

    // ------------------------------------------------------------------
    // Per-protocol costs (Dragon, update-based). A Dragon dirty
    // intervention moves a whole line cache-to-cache like MESI's HITM
    // but skips the invalidate round; a bus update broadcasts one
    // written word to all sharers (the 4N + (P+1)-style bus occupancy
    // of classic snooping-protocol cost models, scaled to our cycle
    // constants). Charged in place of `hitm` / `upgrade` when the
    // machine runs the Dragon backend.
    // ------------------------------------------------------------------
    std::uint32_t dragonHitm = 90;   ///< dirty-intervention transfer
    std::uint32_t dragonUpdate = 40; ///< bus update broadcast (word)

    // ------------------------------------------------------------------
    // Software store buffer (Section 5.5). These are *software* costs:
    // the SSB is a Pin-injected hash table, so a buffered store is a
    // hash insert (tens of cycles), far cheaper than a HITM transfer but
    // far more expensive than a hardware store buffer. This asymmetry is
    // why online repair yields ~1.2x while the manual fix of the same
    // bug yields ~17x (Figure 11).
    // ------------------------------------------------------------------
    std::uint32_t ssbStore = 22;      ///< buffered store (hash insert)
    std::uint32_t ssbLoadCheck = 8;   ///< buffer lookup on a load
    std::uint32_t ssbLoadHit = 5;     ///< extra when the load is served
    std::uint32_t ssbFlushBase = 80;  ///< transaction begin/commit
    std::uint32_t aliasCheckCost = 5;
    /** Pin JIT overhead added to every instruction while instrumented. */
    std::uint32_t pinBaseOverhead = 1;
    /**
     * One-time Pin attach + code-cache warmup cost, cycles (scaled to
     * the compressed kernel runs; see kTimeCompression).
     */
    std::uint64_t pinAttachCost = 60'000;

    // ------------------------------------------------------------------
    // PEBS / driver (Section 6): costs charged to the application core
    // ------------------------------------------------------------------
    std::uint32_t pebsAssist = 400;      ///< microcode assist per sample
    std::uint32_t pmiCost = 7000;        ///< buffer-full interrupt + drain
    std::uint32_t driverPerRecord = 45;  ///< driver CPU per record moved
    std::uint32_t detectorPerRecord = 70;///< detector CPU per record
};

} // namespace laser::sim

#endif // LASER_SIM_TIMING_H
