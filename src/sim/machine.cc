#include "sim/machine.h"

#include <algorithm>
#include <limits>
#include <set>

namespace laser::sim {

using isa::Instruction;
using isa::Op;
using isa::SyncKind;

Machine::Machine(isa::Program prog, MachineConfig cfg)
    : prog_(std::move(prog)),
      cfg_(cfg),
      space_(prog_, cfg.numCores),
      heap_(mem::Layout::kHeapBase, mem::Layout::kHeapSize),
      globals_(mem::Layout::kGlobalsBase, mem::Layout::kGlobalsSize),
      proto_(makeProtocol(cfg.protocol, cfg.numCores, cfg.geometry))
{
    heap_.perturb(cfg.heapPerturbation);
    threads_.reserve(cfg.numCores);
    for (int t = 0; t < cfg.numCores; ++t) {
        threads_.emplace_back(cfg.ssbMode);
        threads_.back().tid = t;
        threads_.back().regs[isa::R15] =
            static_cast<std::int64_t>(space_.stackTop(t));
        threads_.back().rng.reseed(cfg.seed ^
                                   (0x9e3779b97f4a7c15ULL * (t + 1)));
    }
    stats_.threadCycles.resize(cfg.numCores, 0);
    stats_.threadInstructions.resize(cfg.numCores, 0);
}

void
Machine::setReg(ThreadCtx &t, isa::Reg r, std::int64_t v)
{
    // r0 is hardwired to zero by convention.
    if (r != isa::R0)
        t.regs[r] = v;
}

std::int64_t
Machine::reg(int tid, isa::Reg r) const
{
    return threads_.at(tid).regs[r];
}

std::uint64_t
Machine::memAccess(ThreadCtx &t, std::uint64_t addr, int size,
                   bool is_write, bool is_load_class, bool is_atomic)
{
    const TimingModel &tm = cfg_.timing;
    std::uint64_t cost = 0;
    if (cfg_.latencyJitter)
        cost += t.rng() & 1;

    if (is_load_class)
        ++stats_.loads;
    if (is_write)
        ++stats_.stores;
    if (cfg_.trackDirtyPages && is_write)
        t.dirtyPages.insert(addr >> 12);

    if (cfg_.threadsAsProcesses && !is_atomic) {
        // Sheriff execution model: the access hits the thread's private
        // copy; no coherence traffic, no HITM possible.
        cost += tm.l1Hit;
        if (sink_)
            cost += sink_->onMemop(t.tid, t.pc, is_write, t.clock);
        return cost;
    }

    // Per-protocol cycle costs: Dragon's dirty intervention and bus
    // update replace MESI's HITM transfer and S->M upgrade.
    const bool dragon = cfg_.protocol == ProtocolKind::Dragon;
    const std::uint32_t hitm_cost = dragon ? tm.dragonHitm : tm.hitm;
    const std::uint32_t upgrade_cost =
        dragon ? tm.dragonUpdate : tm.upgrade;

    const AccessOutcome outcome =
        proto_->access(t.tid, addr, is_write, is_load_class);
    switch (outcome) {
      case AccessOutcome::L1Hit:
        ++stats_.l1Hits;
        cost += tm.l1Hit;
        break;
      case AccessOutcome::LlcHit:
        ++stats_.llcHits;
        cost += tm.llcHit;
        break;
      case AccessOutcome::MemMiss:
        ++stats_.memMisses;
        cost += tm.memMiss;
        break;
      case AccessOutcome::HitmLoad:
        ++stats_.hitmLoads;
        cost += hitm_cost;
        break;
      case AccessOutcome::HitmStore:
        ++stats_.hitmStores;
        cost += hitm_cost;
        break;
      case AccessOutcome::Upgrade:
        ++stats_.upgrades;
        cost += upgrade_cost;
        break;
      case AccessOutcome::RfoShared:
        ++stats_.rfos;
        cost += tm.rfoShared;
        break;
    }

    if (sink_) {
        if (isHitm(outcome)) {
            HitmEvent ev;
            ev.core = t.tid;
            ev.pcIndex = t.pc;
            ev.vaddr = addr;
            ev.accessSize = static_cast<std::uint8_t>(size);
            ev.isLoadUop = outcome == AccessOutcome::HitmLoad;
            ev.isStore = is_write;
            ev.cycle = t.clock;
            cost += sink_->onHitm(ev);
        }
        cost += sink_->onMemop(t.tid, t.pc, is_write, t.clock);
    }
    return cost;
}

void
Machine::traceVisibility(ThreadCtx &t, std::uint64_t min_seq,
                         std::uint64_t max_seq, std::uint64_t count)
{
    if (cfg_.recordTsoTrace)
        tsoTrace_.push_back({t.tid, min_seq, max_seq, count});
}

std::uint64_t
Machine::flushSsb(ThreadCtx &t)
{
    if (t.ssb.empty())
        return 0;

    const TimingModel &tm = cfg_.timing;
    std::vector<SsbDrainEntry> entries = t.ssb.drain();
    ++stats_.ssbFlushes;
    stats_.ssbFlushedEntries += entries.size();

    std::uint64_t cost = tm.ssbFlushBase;

    if (cfg_.ssbMode == SsbMode::Fifo) {
        // The queue drains one store at a time, each individually
        // globally visible (trivially TSO, impractically slow/large).
        for (const SsbDrainEntry &e : entries) {
            cost += memAccess(t, e.addr, 8, true, false, false);
            for (int lane = 0; lane < 8; ++lane) {
                if (e.validMask & (1u << lane))
                    mem_.writeByte(e.addr + lane, e.bytes[lane]);
            }
            traceVisibility(t, e.minSeq, e.maxSeq, 1);
        }
        return cost;
    }

    // Coalescing mode: the flush is one hardware transaction — all lines
    // are acquired and all bytes become visible atomically (strong
    // atomicity, Section 5.5), so no illegal reordering is observable.
    const std::uint64_t line_bytes = proto_->lineBytes();
    std::set<std::uint64_t> lines;
    std::uint64_t min_seq = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_seq = 0;
    for (const SsbDrainEntry &e : entries) {
        lines.insert(proto_->lineOf(e.addr));
        min_seq = std::min(min_seq, e.minSeq);
        max_seq = std::max(max_seq, e.maxSeq);
    }
    for (std::uint64_t line : lines)
        cost += memAccess(t, line * line_bytes,
                          static_cast<int>(line_bytes), true, false,
                          false);
    for (const SsbDrainEntry &e : entries) {
        for (int lane = 0; lane < 8; ++lane) {
            if (e.validMask & (1u << lane))
                mem_.writeByte(e.addr + lane, e.bytes[lane]);
        }
    }
    traceVisibility(t, min_seq, max_seq, entries.size());
    return cost;
}

std::uint64_t
Machine::syncComplete(ThreadCtx &t, SyncKind kind)
{
    ++stats_.syncOps;
    std::uint64_t cost = 0;
    if (sink_) {
        cost = sink_->onSync(t.tid, kind,
                             static_cast<std::uint64_t>(
                                 t.dirtyPages.size()),
                             t.clock);
    }
    if (cfg_.trackDirtyPages)
        t.dirtyPages.clear();
    return cost;
}

void
Machine::execute(ThreadCtx &t)
{
    const Instruction &insn = prog_.code[t.pc];
    const TimingModel &tm = cfg_.timing;
    std::uint64_t cost = tm.base;
    std::uint32_t next = t.pc + 1;
    auto regU = [&](isa::Reg r) {
        return static_cast<std::uint64_t>(t.regs[r]);
    };

    switch (insn.op) {
      case Op::Nop:
        break;
      case Op::Halt:
        t.halted = true;
        break;
      case Op::MovImm:
        setReg(t, insn.dst, insn.imm);
        break;
      case Op::MovReg:
        setReg(t, insn.dst, t.regs[insn.src1]);
        break;
      // ALU arithmetic wraps modulo 2^64 like the hardware it models;
      // compute unsigned to keep overflow defined.
      case Op::Add:
        setReg(t, insn.dst,
               static_cast<std::int64_t>(regU(insn.src1) +
                                         regU(insn.src2)));
        break;
      case Op::AddImm:
        setReg(t, insn.dst,
               static_cast<std::int64_t>(
                   regU(insn.src1) +
                   static_cast<std::uint64_t>(insn.imm)));
        break;
      case Op::Sub:
        setReg(t, insn.dst,
               static_cast<std::int64_t>(regU(insn.src1) -
                                         regU(insn.src2)));
        break;
      case Op::SubImm:
        setReg(t, insn.dst,
               static_cast<std::int64_t>(
                   regU(insn.src1) -
                   static_cast<std::uint64_t>(insn.imm)));
        break;
      case Op::Mul:
        setReg(t, insn.dst,
               static_cast<std::int64_t>(regU(insn.src1) *
                                         regU(insn.src2)));
        cost += 2; // multiply latency
        break;
      case Op::MulImm:
        setReg(t, insn.dst,
               static_cast<std::int64_t>(
                   regU(insn.src1) *
                   static_cast<std::uint64_t>(insn.imm)));
        cost += 2;
        break;
      case Op::And:
        setReg(t, insn.dst, t.regs[insn.src1] & t.regs[insn.src2]);
        break;
      case Op::Or:
        setReg(t, insn.dst, t.regs[insn.src1] | t.regs[insn.src2]);
        break;
      case Op::Xor:
        setReg(t, insn.dst, t.regs[insn.src1] ^ t.regs[insn.src2]);
        break;
      case Op::ShlImm:
        setReg(t, insn.dst,
               static_cast<std::int64_t>(regU(insn.src1) << insn.imm));
        break;
      case Op::ShrImm:
        setReg(t, insn.dst,
               static_cast<std::int64_t>(regU(insn.src1) >> insn.imm));
        break;

      case Op::Load: {
        const std::uint64_t addr = regU(insn.src1) + insn.imm;
        std::uint64_t value = 0;
        if (insn.useSsb && !insn.ssbSkip) {
            cost += tm.ssbLoadCheck;
            if (t.ssb.getFull(addr, insn.size, &value)) {
                ++stats_.ssbLoadHits;
                cost += tm.ssbLoadHit;
            } else if (t.ssb.containsAny(addr, insn.size)) {
                cost += memAccess(t, addr, insn.size, false, true, false);
                value = t.ssb.merge(addr, insn.size,
                                    mem_.read(addr, insn.size));
            } else {
                cost += memAccess(t, addr, insn.size, false, true, false);
                value = mem_.read(addr, insn.size);
            }
        } else {
            cost += memAccess(t, addr, insn.size, false, true, false);
            value = mem_.read(addr, insn.size);
        }
        setReg(t, insn.dst, static_cast<std::int64_t>(value));
        break;
      }

      case Op::Store: {
        const std::uint64_t addr = regU(insn.src1) + insn.imm;
        const std::uint64_t value = regU(insn.src2);
        if (insn.useSsb) {
            ++stats_.ssbStores;
            cost += tm.ssbStore;
            t.ssb.put(addr, insn.size, value, ++t.storeSeq);
            stats_.ssbMaxEntriesSeen = std::max(
                stats_.ssbMaxEntriesSeen,
                static_cast<std::uint64_t>(t.ssb.entryCount()));
            if (t.ssb.entryCount() >
                    static_cast<std::size_t>(cfg_.ssbMaxEntries)) {
                cost += flushSsb(t);
            }
        } else {
            cost += memAccess(t, addr, insn.size, true, false, false);
            mem_.write(addr, insn.size, value);
            ++t.storeSeq;
            traceVisibility(t, t.storeSeq, t.storeSeq, 1);
        }
        if (insn.sync == SyncKind::LockRelease)
            cost += syncComplete(t, SyncKind::LockRelease);
        break;
      }

      case Op::AddMem: {
        const std::uint64_t addr = regU(insn.src1) + insn.imm;
        if (insn.useSsb) {
            cost += tm.ssbLoadCheck;
            std::uint64_t value = 0;
            if (!t.ssb.getFull(addr, insn.size, &value)) {
                cost += memAccess(t, addr, insn.size, false, true, false);
                value = t.ssb.merge(addr, insn.size,
                                    mem_.read(addr, insn.size));
            }
            value += regU(insn.src2);
            ++stats_.ssbStores;
            cost += tm.ssbStore;
            t.ssb.put(addr, insn.size, value, ++t.storeSeq);
            stats_.ssbMaxEntriesSeen = std::max(
                stats_.ssbMaxEntriesSeen,
                static_cast<std::uint64_t>(t.ssb.entryCount()));
            if (t.ssb.entryCount() >
                    static_cast<std::size_t>(cfg_.ssbMaxEntries)) {
                cost += flushSsb(t);
            }
        } else {
            // One coherence access with write intent; the load uop is
            // what a PEBS HITM record would attribute (Section 4.3: such
            // instructions are in both the load and store sets).
            cost += memAccess(t, addr, insn.size, true, true, false);
            const std::uint64_t value =
                mem_.read(addr, insn.size) + regU(insn.src2);
            mem_.write(addr, insn.size, value);
            ++t.storeSeq;
            traceVisibility(t, t.storeSeq, t.storeSeq, 1);
        }
        break;
      }

      case Op::Cas: {
        // Atomics have fence semantics: drain the SSB first.
        cost += flushSsb(t);
        cost += tm.atomicExtra;
        ++stats_.atomics;
        const std::uint64_t addr = regU(insn.src1) + insn.imm;
        cost += memAccess(t, addr, insn.size, true, true, true);
        const std::uint64_t old = mem_.read(addr, insn.size);
        const bool success = old == regU(insn.src2);
        if (success) {
            mem_.write(addr, insn.size, regU(insn.dst));
            ++t.storeSeq;
            traceVisibility(t, t.storeSeq, t.storeSeq, 1);
        }
        setReg(t, insn.dst, static_cast<std::int64_t>(old));
        if (insn.sync == SyncKind::LockAcquire && success)
            cost += syncComplete(t, SyncKind::LockAcquire);
        break;
      }

      case Op::FetchAdd: {
        cost += flushSsb(t);
        cost += tm.atomicExtra;
        ++stats_.atomics;
        const std::uint64_t addr = regU(insn.src1) + insn.imm;
        cost += memAccess(t, addr, insn.size, true, true, true);
        const std::uint64_t old = mem_.read(addr, insn.size);
        mem_.write(addr, insn.size, old + regU(insn.src2));
        ++t.storeSeq;
        traceVisibility(t, t.storeSeq, t.storeSeq, 1);
        setReg(t, insn.dst, static_cast<std::int64_t>(old));
        if (insn.sync == SyncKind::BarrierWait)
            cost += syncComplete(t, SyncKind::BarrierWait);
        break;
      }

      case Op::Fence:
        cost += tm.fenceCost;
        cost += flushSsb(t);
        break;

      case Op::Jmp:
        next = static_cast<std::uint32_t>(insn.target);
        break;
      case Op::JmpReg:
      case Op::Ret:
        next = static_cast<std::uint32_t>(regU(insn.src1));
        break;
      case Op::Call:
        setReg(t, insn.dst, t.pc + 1);
        next = static_cast<std::uint32_t>(insn.target);
        break;
      case Op::Beq:
        if (t.regs[insn.src1] == t.regs[insn.src2])
            next = static_cast<std::uint32_t>(insn.target);
        break;
      case Op::Bne:
        if (t.regs[insn.src1] != t.regs[insn.src2])
            next = static_cast<std::uint32_t>(insn.target);
        break;
      case Op::Blt:
        if (t.regs[insn.src1] < t.regs[insn.src2])
            next = static_cast<std::uint32_t>(insn.target);
        break;
      case Op::Bge:
        if (t.regs[insn.src1] >= t.regs[insn.src2])
            next = static_cast<std::uint32_t>(insn.target);
        break;

      case Op::Pause:
        cost += tm.pauseCost;
        break;
      case Op::Tid:
        setReg(t, insn.dst, t.tid);
        break;

      case Op::SsbFlush:
        cost += flushSsb(t);
        break;

      case Op::AliasCheck: {
        ++stats_.aliasChecks;
        cost += tm.aliasCheckCost;
        const std::uint64_t addr = regU(insn.src1) + insn.imm;
        if (t.ssb.containsAny(addr, 8)) {
            // Mis-speculation: recover by flushing (a thread-local
            // decision that cannot violate TSO, Section 5.3).
            ++stats_.aliasMisspecs;
            cost += flushSsb(t);
        }
        break;
      }
    }

    t.pc = next;
    t.clock += cost;
    ++t.instructions;
    ++stats_.instructions;
}

MachineStats
Machine::run()
{
    if (ran_)
        return stats_;
    ran_ = true;

    while (stats_.instructions < cfg_.maxInstructions) {
        ThreadCtx *best = nullptr;
        for (ThreadCtx &t : threads_) {
            if (!t.halted && (!best || t.clock < best->clock))
                best = &t;
        }
        if (!best)
            break;
        execute(*best);
    }

    if (stats_.instructions >= cfg_.maxInstructions)
        stats_.truncated = true;

    // Drain any abandoned store buffers (a real fence would precede
    // thread exit) so final memory is complete for result checking.
    for (ThreadCtx &t : threads_)
        flushSsb(t);

    for (const ThreadCtx &t : threads_) {
        stats_.threadCycles[t.tid] = t.clock;
        stats_.threadInstructions[t.tid] = t.instructions;
        stats_.cycles = std::max(stats_.cycles, t.clock);
    }
    return stats_;
}

} // namespace laser::sim
