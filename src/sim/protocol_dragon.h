/**
 * @file
 * Snooping Dragon (update-based) coherence behind CoherenceProtocol.
 *
 * Dragon never invalidates: a write to a shared line broadcasts the
 * written bytes to every sharer instead. Per-copy states are E
 * (exclusive clean), Sc (shared clean), Sm (shared dirty, the owner)
 * and M (exclusive dirty); at most one cache holds a line dirty (Sm or
 * M) and that cache — not memory — services misses to the line. The
 * directory-style summary kept here per line is therefore: the sharer
 * bitmask, the dirty owner (or none), and whether a sole clean copy is
 * E (eligible for a silent E->M write).
 *
 * HITM outcomes fall out of real dirty interventions, not an outcome
 * table: an access misses, the snoop finds a remote M/Sm copy, and
 * that cache supplies the line cache-to-cache. Consequently a
 * false-sharing write ping-pong HITMs only on each core's first touch
 * — afterwards every write is a bus update into copies that stay valid
 * — which is exactly the fabric-robustness question the protocol sweep
 * measures (LASER's HITM-based signal starves under an update
 * protocol).
 *
 * Capacity is not modeled (geometry's line size applies; sets/ways are
 * ignored): an update protocol's pathology is keeping stale sharers
 * live forever, which unbounded copies model faithfully.
 */

#ifndef LASER_SIM_PROTOCOL_DRAGON_H
#define LASER_SIM_PROTOCOL_DRAGON_H

#include <cstdint>
#include <unordered_map>

#include "sim/protocol.h"

namespace laser::sim {

/** Snooping Dragon model, one entry per touched line. */
class DragonBus final : public CoherenceProtocol
{
  public:
    /** Per-line summary of the per-copy Dragon states. */
    struct LineInfo
    {
        std::uint32_t sharers = 0; ///< bitmask of cores with a copy
        /** Core holding the line dirty (M or Sm); -1 = clean everywhere. */
        std::int8_t owner = -1;
        /** Sole copy is E (clean); enables the silent E->M transition. */
        bool exclusiveClean = false;
    };

    DragonBus(int num_cores, const CacheGeometry &geometry = {});

    ProtocolKind kind() const override { return ProtocolKind::Dragon; }

    AccessOutcome access(int core, std::uint64_t addr, bool is_write,
                         bool is_load_class) override;

    bool checkInvariants() const override;

    std::size_t linesTouched() const override { return lines_.size(); }

    /** Line entry for a line address (nullptr if never touched). */
    const LineInfo *probe(std::uint64_t line_addr) const;

    /** Bus update broadcasts performed (write hits on shared lines). */
    std::uint64_t busUpdates() const { return busUpdates_; }

  private:
    std::unordered_map<std::uint64_t, LineInfo> lines_;
    std::uint64_t busUpdates_ = 0;
};

} // namespace laser::sim

#endif // LASER_SIM_PROTOCOL_DRAGON_H
