#include "sim/protocol_mesi.h"

#include <algorithm>
#include <bit>

namespace laser::sim {

MesiDirectory::MesiDirectory(int num_cores, const CacheGeometry &geometry)
    : CoherenceProtocol(num_cores, geometry)
{
    if (geometry_.bounded())
        lru_.resize(static_cast<std::size_t>(num_cores),
                    std::vector<std::list<std::uint64_t>>(geometry_.sets));
}

void
MesiDirectory::evictLine(int core, std::uint64_t line)
{
    auto it = lines_.find(line);
    if (it == lines_.end())
        return;
    LineInfo &li = it->second;
    li.sharers &= ~(1u << core);
    if (li.owner == core) {
        // An evicted M line writes back to memory; an evicted E line is
        // simply dropped. Either way the line is clean and unowned.
        li.modified = false;
        li.exclusive = false;
        li.owner = -1;
    }
    if (li.sharers == 0)
        lines_.erase(it);
    ++evictions_;
}

void
MesiDirectory::touchLru(int core, std::uint64_t line)
{
    if (!geometry_.bounded())
        return;
    std::list<std::uint64_t> &set =
        lru_[static_cast<std::size_t>(core)][line % geometry_.sets];
    auto pos = std::find(set.begin(), set.end(), line);
    if (pos != set.end()) {
        set.splice(set.begin(), set, pos);
        return;
    }
    set.push_front(line);
    if (set.size() > geometry_.associativity) {
        const std::uint64_t victim = set.back();
        set.pop_back();
        evictLine(core, victim);
    }
}

AccessOutcome
MesiDirectory::access(int core, std::uint64_t addr, bool is_write,
                      bool is_load_class)
{
    const std::uint64_t line = lineOf(addr);
    touchLru(core, line);
    LineInfo &li = lines_[line];
    const std::uint32_t me = 1u << core;
    const bool mine = (li.sharers & me) != 0;

    if (!is_write) {
        if (mine)
            return AccessOutcome::L1Hit;
        if (li.modified) {
            // Remote Modified: HITM. Owner writes back and both end Shared.
            li.modified = false;
            li.exclusive = false;
            li.owner = -1;
            li.sharers |= me;
            return AccessOutcome::HitmLoad;
        }
        if (li.sharers != 0) {
            li.exclusive = false;
            li.owner = -1;
            li.sharers |= me;
            return AccessOutcome::LlcHit;
        }
        li.sharers = me;
        li.owner = static_cast<std::int8_t>(core);
        li.exclusive = true;
        return AccessOutcome::MemMiss;
    }

    // Write path.
    if (mine && (li.modified || li.exclusive) && li.owner == core) {
        li.modified = true;
        li.exclusive = false;
        return AccessOutcome::L1Hit;
    }
    if (mine) {
        // Local Shared copy: upgrade, invalidating remote sharers.
        li.sharers = me;
        li.owner = static_cast<std::int8_t>(core);
        li.modified = true;
        li.exclusive = false;
        return AccessOutcome::Upgrade;
    }
    if (li.modified) {
        // Remote Modified: the HITM case. Ownership migrates.
        li.sharers = me;
        li.owner = static_cast<std::int8_t>(core);
        li.modified = true;
        li.exclusive = false;
        return is_load_class ? AccessOutcome::HitmLoad
                             : AccessOutcome::HitmStore;
    }
    if (li.sharers != 0) {
        // Remote clean copies (E or S): invalidate them; not a HITM.
        li.sharers = me;
        li.owner = static_cast<std::int8_t>(core);
        li.modified = true;
        li.exclusive = false;
        return AccessOutcome::RfoShared;
    }
    li.sharers = me;
    li.owner = static_cast<std::int8_t>(core);
    li.modified = true;
    li.exclusive = false;
    return AccessOutcome::MemMiss;
}

const MesiDirectory::LineInfo *
MesiDirectory::probe(std::uint64_t line_addr) const
{
    auto it = lines_.find(line_addr);
    return it == lines_.end() ? nullptr : &it->second;
}

bool
MesiDirectory::checkInvariants() const
{
    for (const auto &[line, li] : lines_) {
        if (li.sharers == 0)
            return false;
        if (li.modified && li.exclusive)
            return false;
        if (li.modified || li.exclusive) {
            // Illinois rules: a dirty (M) or exclusive-clean (E) line
            // has exactly one sharer, and that sharer is the owner — so
            // the owner is never in another line's sharer set here.
            if (std::popcount(li.sharers) != 1)
                return false;
            if (li.owner < 0 || li.owner >= numCores_)
                return false;
            if (li.sharers != (1u << li.owner))
                return false;
        } else if (li.owner != -1) {
            // Audit addition: Shared lines are unowned.
            return false;
        }
        if (li.sharers >= (1u << numCores_))
            return false;
    }
    return true;
}

} // namespace laser::sim
