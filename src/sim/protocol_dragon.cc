#include "sim/protocol_dragon.h"

#include <bit>

namespace laser::sim {

DragonBus::DragonBus(int num_cores, const CacheGeometry &geometry)
    : CoherenceProtocol(num_cores, geometry)
{
}

AccessOutcome
DragonBus::access(int core, std::uint64_t addr, bool is_write,
                  bool is_load_class)
{
    LineInfo &li = lines_[lineOf(addr)];
    const std::uint32_t me = 1u << core;
    const bool mine = (li.sharers & me) != 0;
    const bool remote_dirty = li.owner >= 0 && li.owner != core;

    if (!is_write) {
        if (mine)
            return AccessOutcome::L1Hit;
        if (remote_dirty) {
            // Dirty intervention: the M/Sm holder supplies the line
            // cache-to-cache (the HITM) and *keeps ownership* as Sm —
            // no writeback, unlike MESI. The reader joins as Sc.
            li.sharers |= me;
            li.exclusiveClean = false;
            return AccessOutcome::HitmLoad;
        }
        if (li.sharers != 0) {
            // Clean copies exist; one (or memory) supplies. Reader Sc.
            li.sharers |= me;
            li.exclusiveClean = false;
            return AccessOutcome::LlcHit;
        }
        li.sharers = me;
        li.exclusiveClean = true;
        return AccessOutcome::MemMiss;
    }

    // Write path.
    if (mine) {
        const bool sole = std::popcount(li.sharers) == 1;
        if (li.owner == core && sole)
            return AccessOutcome::L1Hit; // M write hit
        if (li.owner == -1 && li.exclusiveClean) {
            // Silent E->M, the Illinois-style clean-exclusive upgrade.
            li.owner = static_cast<std::int8_t>(core);
            li.exclusiveClean = false;
            return AccessOutcome::L1Hit;
        }
        // Write hit on a shared copy (Sc or Sm): broadcast a bus
        // update. Every other copy stays valid (as Sc); the writer
        // becomes the dirty owner (Sm; M if it turns out sole). No
        // data is fetched from the previous owner — the copy here is
        // already valid — so this is an update, not a HITM.
        ++busUpdates_;
        li.owner = static_cast<std::int8_t>(core);
        li.exclusiveClean = false;
        return AccessOutcome::Upgrade;
    }
    if (remote_dirty) {
        // Write miss to a dirty remote line: the owner supplies it
        // cache-to-cache (HITM), the writer merges its bytes and
        // broadcasts the update; the writer is the new Sm owner and
        // the previous owner demotes to Sc.
        ++busUpdates_;
        li.sharers |= me;
        li.owner = static_cast<std::int8_t>(core);
        li.exclusiveClean = false;
        return is_load_class ? AccessOutcome::HitmLoad
                             : AccessOutcome::HitmStore;
    }
    if (li.sharers != 0) {
        // Write miss with clean remote copies: fetch + bus update;
        // remote copies stay valid as Sc (no invalidation), writer Sm.
        ++busUpdates_;
        li.sharers |= me;
        li.owner = static_cast<std::int8_t>(core);
        li.exclusiveClean = false;
        return AccessOutcome::RfoShared;
    }
    li.sharers = me;
    li.owner = static_cast<std::int8_t>(core);
    li.exclusiveClean = false;
    return AccessOutcome::MemMiss; // first touch, installs as M
}

const DragonBus::LineInfo *
DragonBus::probe(std::uint64_t line_addr) const
{
    auto it = lines_.find(line_addr);
    return it == lines_.end() ? nullptr : &it->second;
}

bool
DragonBus::checkInvariants() const
{
    for (const auto &[line, li] : lines_) {
        if (li.sharers == 0)
            return false;
        if (li.sharers >= (1u << numCores_))
            return false;
        if (li.owner != -1) {
            // The dirty owner (M or Sm) must itself hold a copy; there
            // is at most one by construction (single owner field).
            if (li.owner < 0 || li.owner >= numCores_)
                return false;
            if ((li.sharers & (1u << li.owner)) == 0)
                return false;
        }
        if (li.exclusiveClean) {
            // E: sole copy, clean (Illinois clean-exclusive rule).
            if (std::popcount(li.sharers) != 1 || li.owner != -1)
                return false;
        }
    }
    return true;
}

} // namespace laser::sim
