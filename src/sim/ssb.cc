#include "sim/ssb.h"

#include <algorithm>

namespace laser::sim {

void
SoftwareStoreBuffer::putByte(std::uint64_t addr, std::uint8_t byte,
                             std::uint64_t seq)
{
    Slot &slot = slots_[addr >> 3];
    const int lane = static_cast<int>(addr & 7);
    if (slot.validMask == 0) {
        slot.minSeq = seq;
        slot.maxSeq = seq;
    } else {
        slot.minSeq = std::min(slot.minSeq, seq);
        slot.maxSeq = std::max(slot.maxSeq, seq);
    }
    slot.validMask |= std::uint8_t(1u << lane);
    slot.bytes[lane] = byte;
}

void
SoftwareStoreBuffer::put(std::uint64_t addr, int size, std::uint64_t value,
                         std::uint64_t seq)
{
    ++totalPuts_;
    for (int i = 0; i < size; ++i)
        putByte(addr + i, std::uint8_t(value >> (8 * i)), seq);
    if (mode_ == SsbMode::Fifo) {
        fifo_.push_back({addr, static_cast<std::uint8_t>(size), value,
                         seq});
    }
}

const SoftwareStoreBuffer::Slot *
SoftwareStoreBuffer::slotFor(std::uint64_t chunk) const
{
    auto it = slots_.find(chunk);
    return it == slots_.end() ? nullptr : &it->second;
}

bool
SoftwareStoreBuffer::getFull(std::uint64_t addr, int size,
                             std::uint64_t *value) const
{
    std::uint64_t out = 0;
    for (int i = 0; i < size; ++i) {
        const std::uint64_t a = addr + i;
        const Slot *slot = slotFor(a >> 3);
        const int lane = static_cast<int>(a & 7);
        if (!slot || !(slot->validMask & (1u << lane)))
            return false;
        out |= std::uint64_t(slot->bytes[lane]) << (8 * i);
    }
    if (value)
        *value = out;
    return true;
}

bool
SoftwareStoreBuffer::containsAny(std::uint64_t addr, int size) const
{
    for (int i = 0; i < size; ++i) {
        const std::uint64_t a = addr + i;
        const Slot *slot = slotFor(a >> 3);
        if (slot && (slot->validMask & (1u << (a & 7))))
            return true;
    }
    return false;
}

std::uint64_t
SoftwareStoreBuffer::merge(std::uint64_t addr, int size,
                           std::uint64_t mem_value) const
{
    std::uint64_t out = mem_value;
    for (int i = 0; i < size; ++i) {
        const std::uint64_t a = addr + i;
        const Slot *slot = slotFor(a >> 3);
        const int lane = static_cast<int>(a & 7);
        if (slot && (slot->validMask & (1u << lane))) {
            out &= ~(std::uint64_t(0xff) << (8 * i));
            out |= std::uint64_t(slot->bytes[lane]) << (8 * i);
        }
    }
    return out;
}

std::vector<SsbDrainEntry>
SoftwareStoreBuffer::drain()
{
    std::vector<SsbDrainEntry> out;
    if (mode_ == SsbMode::Fifo) {
        // One entry per buffered store, in program order.
        out.reserve(fifo_.size());
        for (const FifoEntry &fe : fifo_) {
            SsbDrainEntry e;
            // Split the store into (at most two) chunk-aligned pieces so
            // the drain-entry format stays uniform.
            std::uint64_t a = fe.addr;
            int remaining = fe.size;
            std::uint64_t v = fe.value;
            while (remaining > 0) {
                const std::uint64_t chunk = a & ~7ULL;
                const int lane = static_cast<int>(a & 7);
                const int take = std::min(remaining, 8 - lane);
                e = SsbDrainEntry{};
                e.addr = chunk;
                e.minSeq = e.maxSeq = fe.seq;
                for (int i = 0; i < take; ++i) {
                    e.validMask |= std::uint8_t(1u << (lane + i));
                    e.bytes[lane + i] = std::uint8_t(v >> (8 * i));
                }
                out.push_back(e);
                a += take;
                v >>= 8 * take;
                remaining -= take;
            }
        }
        fifo_.clear();
        slots_.clear();
        return out;
    }

    out.reserve(slots_.size());
    for (const auto &[chunk, slot] : slots_) {
        SsbDrainEntry e;
        e.addr = chunk << 3;
        e.validMask = slot.validMask;
        std::copy(std::begin(slot.bytes), std::end(slot.bytes), e.bytes);
        e.minSeq = slot.minSeq;
        e.maxSeq = slot.maxSeq;
        out.push_back(e);
    }
    slots_.clear();
    return out;
}

std::size_t
SoftwareStoreBuffer::entryCount() const
{
    return mode_ == SsbMode::Fifo ? fifo_.size() : slots_.size();
}

} // namespace laser::sim
