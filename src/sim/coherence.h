/**
 * @file
 * MESI coherence directory for the simulated multicore.
 *
 * HITM events — the signal LASER is built on — are defined by one specific
 * transition: a core accesses a line that is Modified in a *remote* cache
 * (Figure 1 (a) and (c)). The directory tracks, per 64-byte line, the
 * sharer set and the owning core, and reports the outcome class of every
 * access so the machine can charge latency and raise HITM events.
 *
 * Capacity and evictions are not modeled: contention behaviour is driven
 * by coherence-state transitions, not capacity misses, and the paper's
 * detection pipeline is agnostic to them. The first touch of a line is a
 * memory miss; everything after is classified by MESI state.
 *
 * The machine now runs protocol backends behind sim::CoherenceProtocol
 * (protocol.h); CoherenceDirectory is retained as the fixed pre-refactor
 * reference implementation that test_protocol fuzzes MesiDirectory
 * against, outcome for outcome.
 */

#ifndef LASER_SIM_COHERENCE_H
#define LASER_SIM_COHERENCE_H

#include <cstdint>
#include <unordered_map>

namespace laser::sim {

/** Classification of one memory access by the coherence protocol. */
enum class AccessOutcome : std::uint8_t {
    L1Hit,     ///< line valid locally in a sufficient state
    LlcHit,    ///< read served by LLC / a clean remote copy
    MemMiss,   ///< first touch, served by memory
    HitmLoad,  ///< HITM: remote-M line, access has a load uop (Fig. 1a)
    HitmStore, ///< HITM: remote-M line, pure store (Fig. 1c)
    Upgrade,   ///< local S copy upgraded to M (invalidates remote sharers)
    RfoShared, ///< I->M acquiring a line with remote clean copies
};

/** Printable name for an access outcome. */
const char *accessOutcomeName(AccessOutcome outcome);

/** True for the two HITM outcomes. */
constexpr bool
isHitm(AccessOutcome outcome)
{
    return outcome == AccessOutcome::HitmLoad ||
           outcome == AccessOutcome::HitmStore;
}

/**
 * Directory-based MESI model, one entry per touched line.
 *
 * Invariants (checked by checkInvariants, exercised by property tests):
 *  - modified or exclusive implies exactly one sharer, equal to owner;
 *  - modified and exclusive are never both set;
 *  - sharers != 0 whenever an entry exists.
 */
class CoherenceDirectory
{
  public:
    /** Per-line directory state. */
    struct LineInfo
    {
        std::uint32_t sharers = 0; ///< bitmask of cores with a copy
        std::int8_t owner = -1;    ///< owning core when modified/exclusive
        bool modified = false;
        bool exclusive = false;
    };

    explicit CoherenceDirectory(int num_cores, std::uint32_t line_shift = 6)
        : numCores_(num_cores), lineShift_(line_shift)
    {
    }

    /** Line address (upper bits) for a byte address. */
    std::uint64_t
    lineOf(std::uint64_t addr) const
    {
        return addr >> lineShift_;
    }

    /** Cache line size in bytes. */
    std::uint64_t lineBytes() const { return 1ULL << lineShift_; }

    /**
     * Perform one access and update directory state.
     *
     * @param core           accessing core
     * @param addr           byte address
     * @param is_write       access writes the line (stores, RMW, atomics)
     * @param is_load_class  access contains a load uop (loads, RMW,
     *                       atomics); pure stores are not load-class.
     *                       Determines which HITM flavour is reported,
     *                       which in turn determines PEBS record precision
     *                       (Section 3.1).
     */
    AccessOutcome access(int core, std::uint64_t addr, bool is_write,
                         bool is_load_class);

    /** Directory entry for a line address (nullptr if never touched). */
    const LineInfo *probe(std::uint64_t line_addr) const;

    /** Validate all invariants; returns false on the first violation. */
    bool checkInvariants() const;

    /** Number of lines tracked. */
    std::size_t linesTouched() const { return lines_.size(); }

  private:
    std::unordered_map<std::uint64_t, LineInfo> lines_;
    int numCores_;
    std::uint32_t lineShift_;
};

} // namespace laser::sim

#endif // LASER_SIM_COHERENCE_H
