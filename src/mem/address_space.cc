#include "mem/address_space.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace laser::mem {

const char *
regionKindName(RegionKind kind)
{
    switch (kind) {
      case RegionKind::Unmapped: return "unmapped";
      case RegionKind::AppCode:  return "app-code";
      case RegionKind::LibCode:  return "lib-code";
      case RegionKind::Globals:  return "globals";
      case RegionKind::Heap:     return "heap";
      case RegionKind::Stack:    return "stack";
      case RegionKind::Kernel:   return "kernel";
    }
    return "???";
}

AddressSpace::AddressSpace(const isa::Program &prog, int num_threads)
    : numThreads_(num_threads)
{
    // Text mappings: one region per program segment, laid out contiguously
    // from kCodeBase (index -> pc stays a simple affine map).
    for (const isa::Segment &seg : prog.segments) {
        Region r;
        r.start = Layout::kCodeBase +
                  std::uint64_t(seg.begin) * isa::kInsnBytes;
        r.size = std::uint64_t(seg.end - seg.begin) * isa::kInsnBytes;
        r.kind = seg.isLibrary ? RegionKind::LibCode : RegionKind::AppCode;
        r.name = seg.isLibrary ? "/usr/lib/" + seg.name : "/app/" + seg.name;
        regions_.push_back(r);
        codeEnd_ = std::max(codeEnd_, r.end());
    }

    regions_.push_back({Layout::kGlobalsBase, Layout::kGlobalsSize,
                        RegionKind::Globals, "/app/" + prog.name, -1});
    regions_.push_back({Layout::kHeapBase, Layout::kHeapSize,
                        RegionKind::Heap, "[heap]", -1});
    for (int t = 0; t < num_threads; ++t) {
        regions_.push_back({stackBase(t), Layout::kStackSize,
                            RegionKind::Stack,
                            "[stack:" + std::to_string(1000 + t) + "]", t});
    }

    std::sort(regions_.begin(), regions_.end(),
              [](const Region &a, const Region &b) {
                  return a.start < b.start;
              });
}

RegionKind
AddressSpace::classify(std::uint64_t addr) const
{
    if (addr >= Layout::kKernelBase)
        return RegionKind::Kernel;
    const Region *r = find(addr);
    return r ? r->kind : RegionKind::Unmapped;
}

const Region *
AddressSpace::find(std::uint64_t addr) const
{
    // regions_ is sorted by start; binary search for the candidate.
    auto it = std::upper_bound(
        regions_.begin(), regions_.end(), addr,
        [](std::uint64_t a, const Region &r) { return a < r.start; });
    if (it == regions_.begin())
        return nullptr;
    --it;
    return it->contains(addr) ? &*it : nullptr;
}

std::int64_t
AddressSpace::pcToIndex(std::uint64_t pc) const
{
    if (pc < Layout::kCodeBase || pc >= codeEnd_)
        return -1;
    const std::uint64_t off = pc - Layout::kCodeBase;
    if (off % isa::kInsnBytes != 0)
        return -1;
    return static_cast<std::int64_t>(off / isa::kInsnBytes);
}

std::uint64_t
AddressSpace::stackTop(int tid) const
{
    return stackBase(tid) + Layout::kStackSize - 64;
}

std::string
AddressSpace::renderProcMaps() const
{
    std::ostringstream os;
    for (const Region &r : regions_) {
        const bool exec =
            r.kind == RegionKind::AppCode || r.kind == RegionKind::LibCode;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%08llx-%08llx %s %08x %02x:%02x %-8d %s\n",
                      static_cast<unsigned long long>(r.start),
                      static_cast<unsigned long long>(r.end()),
                      exec ? "r-xp" : "rw-p", 0u, 8u, 1u,
                      exec ? 4321 : 0, r.name.c_str());
        os << line;
    }
    return os.str();
}

} // namespace laser::mem
