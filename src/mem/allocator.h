/**
 * @file
 * Heap allocator model: the source of the paper's "invisible" false
 * sharing.
 *
 * Section 1 observes that contention "can even arise invisibly in the
 * program due to the opaque decisions of the memory allocator", and the
 * linear_regression case study (Figure 2) hinges on a 64-byte struct array
 * that the allocator does NOT align to a cache line: glibc-style malloc
 * prepends a 16-byte chunk header and guarantees only 16-byte alignment,
 * so a 64-byte-per-element array typically starts at offset 16 (mod 64)
 * and every element straddles two lines.
 *
 * The perturb() hook models the incidental heap-layout shift that
 * attaching LASER introduces (different environment/arguments move the
 * initial break), which is how the paper's lu_ncb coincidentally sped up
 * by 30% under LASER (Section 7.4.2).
 */

#ifndef LASER_MEM_ALLOCATOR_H
#define LASER_MEM_ALLOCATOR_H

#include <cstdint>

namespace laser::mem {

/** Bump allocator with malloc-like chunk headers. */
class BumpAllocator
{
  public:
    /** Chunk header size, as in glibc malloc. */
    static constexpr std::uint64_t kHeaderBytes = 16;
    /** Minimum data alignment guaranteed by malloc. */
    static constexpr std::uint64_t kMinAlign = 16;

    BumpAllocator(std::uint64_t base, std::uint64_t size)
        : base_(base), end_(base + size), cursor_(base)
    {
    }

    /**
     * Shift the allocation cursor once, before any allocation; models the
     * environment-dependent initial break offset.
     */
    void
    perturb(std::uint64_t bytes)
    {
        cursor_ += bytes;
    }

    /**
     * malloc analogue: returns the data address (past the header),
     * 16-byte aligned. Aborts (returns 0) when the region is exhausted.
     */
    std::uint64_t
    alloc(std::uint64_t size)
    {
        std::uint64_t data = alignUp(cursor_ + kHeaderBytes, kMinAlign);
        if (data + size > end_)
            return 0;
        cursor_ = data + size;
        return data;
    }

    /**
     * posix_memalign analogue: data address aligned to @p align (power of
     * two, >= 16). This is the "fix" applied to linear_regression and
     * lu_ncb in Section 7.4.
     */
    std::uint64_t
    allocAligned(std::uint64_t size, std::uint64_t align)
    {
        std::uint64_t data = alignUp(cursor_ + kHeaderBytes, align);
        if (data + size > end_)
            return 0;
        cursor_ = data + size;
        return data;
    }

    /** Bytes consumed so far (including headers and padding). */
    std::uint64_t used() const { return cursor_ - base_; }

    /** Base address of the managed region. */
    std::uint64_t base() const { return base_; }

  private:
    static std::uint64_t
    alignUp(std::uint64_t v, std::uint64_t align)
    {
        return (v + align - 1) & ~(align - 1);
    }

    std::uint64_t base_;
    std::uint64_t end_;
    std::uint64_t cursor_;
};

} // namespace laser::mem

#endif // LASER_MEM_ALLOCATOR_H
