/**
 * @file
 * Sparse byte-addressable backing store for the simulated machine.
 *
 * Pages are allocated lazily on first touch; reads of untouched memory
 * return zero (like fresh anonymous mappings). Values are little-endian,
 * matching the x86 systems the paper targets.
 */

#ifndef LASER_MEM_MEMORY_H
#define LASER_MEM_MEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace laser::mem {

/** Sparse simulated physical memory. */
class Memory
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    /** Read @p size bytes (1/2/4/8) at @p addr, little-endian. */
    std::uint64_t read(std::uint64_t addr, int size) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    void write(std::uint64_t addr, int size, std::uint64_t value);

    /** Read a single byte. */
    std::uint8_t readByte(std::uint64_t addr) const;

    /** Write a single byte. */
    void writeByte(std::uint64_t addr, std::uint8_t value);

    /** Bulk fill helper for workload initialization. */
    void fill(std::uint64_t addr, std::uint64_t count, std::uint8_t value);

    /** Number of distinct pages touched so far. */
    std::size_t pagesTouched() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    Page *pageFor(std::uint64_t addr);
    const Page *pageForConst(std::uint64_t addr) const;

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace laser::mem

#endif // LASER_MEM_MEMORY_H
