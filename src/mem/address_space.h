/**
 * @file
 * Synthetic virtual address space layout and /proc/<pid>/maps rendering.
 *
 * LASERDETECT classifies each HITM record by parsing the application's
 * virtual memory map (/proc/<pid>/maps on Linux, Section 4.1): PCs outside
 * the application and its libraries are dropped as spurious, and data
 * addresses falling in thread stacks are ignored. This module defines the
 * simulated process layout and renders a maps-format text that the
 * detector parses, exactly as the real system would.
 */

#ifndef LASER_MEM_ADDRESS_SPACE_H
#define LASER_MEM_ADDRESS_SPACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"

namespace laser::mem {

/** Classification of an address region. */
enum class RegionKind : std::uint8_t {
    Unmapped,
    AppCode,
    LibCode,
    Globals,
    Heap,
    Stack,
    Kernel,
};

/** Printable name of a region kind. */
const char *regionKindName(RegionKind kind);

/** One mapped region of the simulated process. */
struct Region
{
    std::uint64_t start = 0;
    std::uint64_t size = 0;
    RegionKind kind = RegionKind::Unmapped;
    /** Pathname shown in the maps file ("/app/kmeans", "[heap]", ...). */
    std::string name;
    /** Owning thread for stacks, -1 otherwise. */
    int tid = -1;

    std::uint64_t end() const { return start + size; }
    bool
    contains(std::uint64_t addr) const
    {
        return addr >= start && addr < end();
    }
};

/** Fixed layout constants of the simulated process. */
struct Layout
{
    static constexpr std::uint64_t kCodeBase = 0x0040'0000;
    static constexpr std::uint64_t kGlobalsBase = 0x0060'0000;
    static constexpr std::uint64_t kGlobalsSize = 0x0010'0000; // 1 MiB
    static constexpr std::uint64_t kHeapBase = 0x0100'0000;
    static constexpr std::uint64_t kHeapSize = 0x1000'0000;    // 256 MiB
    static constexpr std::uint64_t kStackBase = 0x7000'0000;
    static constexpr std::uint64_t kStackSize = 0x0010'0000;   // 1 MiB
    static constexpr std::uint64_t kStackStride = 0x0020'0000;
    static constexpr std::uint64_t kKernelBase = 0xffff'8000'0000'0000ULL;
};

/**
 * The address space of one simulated process: code segments from the
 * program, globals, heap and one stack per thread.
 */
class AddressSpace
{
  public:
    /**
     * Build the layout for @p prog with @p num_threads thread stacks.
     * Code segments (app text, library text) are taken from the program's
     * segment table.
     */
    AddressSpace(const isa::Program &prog, int num_threads);

    /** Classify an arbitrary address. */
    RegionKind classify(std::uint64_t addr) const;

    /** Region containing @p addr, or nullptr. */
    const Region *find(std::uint64_t addr) const;

    /** All mapped regions, ordered by start address. */
    const std::vector<Region> &regions() const { return regions_; }

    /** Virtual address of the instruction at @p index. */
    std::uint64_t
    indexToPc(std::uint32_t index) const
    {
        return Layout::kCodeBase + std::uint64_t(index) * isa::kInsnBytes;
    }

    /**
     * Instruction index for a code address; returns -1 for addresses
     * outside the text mappings or misaligned.
     */
    std::int64_t pcToIndex(std::uint64_t pc) const;

    /** One past the last text address (app + libraries). */
    std::uint64_t codeEnd() const { return codeEnd_; }

    /** Initial stack pointer for thread @p tid (16-byte aligned, at top). */
    std::uint64_t stackTop(int tid) const;

    /** Stack region base for thread @p tid. */
    std::uint64_t
    stackBase(int tid) const
    {
        return Layout::kStackBase +
               std::uint64_t(tid) * Layout::kStackStride;
    }

    /**
     * Render the /proc/<pid>/maps analogue that the detector parses.
     * Format per line: "start-end perms offset dev inode  pathname".
     */
    std::string renderProcMaps() const;

    int numThreads() const { return numThreads_; }

  private:
    std::vector<Region> regions_;
    std::uint64_t codeEnd_ = Layout::kCodeBase;
    int numThreads_ = 0;
};

} // namespace laser::mem

#endif // LASER_MEM_ADDRESS_SPACE_H
