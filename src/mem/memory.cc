#include "mem/memory.h"

#include <cstring>

namespace laser::mem {

Memory::Page *
Memory::pageFor(std::uint64_t addr)
{
    const std::uint64_t pfn = addr / kPageBytes;
    auto it = pages_.find(pfn);
    if (it == pages_.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages_.emplace(pfn, std::move(page)).first;
    }
    return it->second.get();
}

const Memory::Page *
Memory::pageForConst(std::uint64_t addr) const
{
    const std::uint64_t pfn = addr / kPageBytes;
    auto it = pages_.find(pfn);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint64_t
Memory::read(std::uint64_t addr, int size) const
{
    // Fast path: access contained in one page.
    const std::uint64_t off = addr % kPageBytes;
    if (off + std::uint64_t(size) <= kPageBytes) {
        const Page *page = pageForConst(addr);
        if (!page)
            return 0;
        std::uint64_t value = 0;
        std::memcpy(&value, page->data() + off, size);
        return value;
    }
    std::uint64_t value = 0;
    for (int i = 0; i < size; ++i)
        value |= std::uint64_t(readByte(addr + i)) << (8 * i);
    return value;
}

void
Memory::write(std::uint64_t addr, int size, std::uint64_t value)
{
    const std::uint64_t off = addr % kPageBytes;
    if (off + std::uint64_t(size) <= kPageBytes) {
        Page *page = pageFor(addr);
        std::memcpy(page->data() + off, &value, size);
        return;
    }
    for (int i = 0; i < size; ++i)
        writeByte(addr + i, std::uint8_t(value >> (8 * i)));
}

std::uint8_t
Memory::readByte(std::uint64_t addr) const
{
    const Page *page = pageForConst(addr);
    return page ? (*page)[addr % kPageBytes] : 0;
}

void
Memory::writeByte(std::uint64_t addr, std::uint8_t value)
{
    (*pageFor(addr))[addr % kPageBytes] = value;
}

void
Memory::fill(std::uint64_t addr, std::uint64_t count, std::uint8_t value)
{
    for (std::uint64_t i = 0; i < count; ++i)
        writeByte(addr + i, value);
}

} // namespace laser::mem
