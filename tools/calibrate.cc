/**
 * @file
 * Developer diagnostic: per-workload rates, overheads and detection
 * output, used to calibrate the kernels against the paper's numbers.
 * Not part of the bench suite.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/accuracy.h"
#include "core/experiment.h"
#include "obs/export.h"
#include "util/table.h"
#include "workloads/workload.h"

using namespace laser;

int
main(int argc, char **argv)
{
    std::vector<std::string> only;
    for (int i = 1; i < argc; ++i)
        only.push_back(argv[i]);

    core::ExperimentRunner runner;
    TablePrinter table({"workload", "cycles(M)", "sec", "hitm", "rate/s",
                        "laserX", "vtuneX", "FN", "FP", "lines",
                        "top-line", "top-rate", "type", "ts/fs",
                        "repair"});

    for (const auto &w : workloads::allWorkloads()) {
        if (!only.empty()) {
            bool match = false;
            for (const auto &name : only)
                match |= w.info.name == name;
            if (!match)
                continue;
        }
        core::RunResult native = runner.run(w, core::Scheme::Native);
        core::RunResult laser = runner.run(w, core::Scheme::Laser);
        core::RunResult vtune = runner.run(w, core::Scheme::VTune);

        const double secs = native.seconds();
        const double rate =
            secs > 0 ? double(native.stats.hitmTotal()) / secs : 0;
        core::AccuracyResult acc = core::evaluateAccuracy(
            w.info, core::reportLocations(laser.detection));

        std::string top_line = "-", top_rate = "-", top_type = "-";
        if (!laser.detection.lines.empty()) {
            top_line = laser.detection.lines[0].location;
            top_rate = fmtDouble(laser.detection.lines[0].hitmRate, 0);
            top_type = detect::contentionTypeName(
                laser.detection.lines[0].type);
        }
        std::string top_tsfs = "-";
        if (!laser.detection.lines.empty()) {
            top_tsfs =
                std::to_string(laser.detection.lines[0].tsEvents) + "/" +
                std::to_string(laser.detection.lines[0].fsEvents);
        }
        std::string repair = "-";
        if (laser.detection.repairRequested)
            repair = laser.repairApplied
                         ? "applied f=" +
                               fmtDouble(laser.repairTriggerFraction, 2)
                         : "declined: " + laser.plan.reason.substr(0, 28);

        table.addRow({
            w.info.name,
            fmtDouble(double(native.runtimeCycles) / 1e6, 2),
            fmtDouble(secs, 2),
            fmtCount(native.stats.hitmTotal()),
            fmtDouble(rate, 0),
            fmtDouble(double(laser.runtimeCycles) /
                          double(native.runtimeCycles), 3),
            fmtDouble(double(vtune.runtimeCycles) /
                          double(native.runtimeCycles), 2),
            std::to_string(acc.falseNegatives),
            std::to_string(acc.falsePositives),
            std::to_string(laser.detection.lines.size()),
            top_line,
            top_rate,
            top_type,
            top_tsfs,
            repair,
        });
    }
    std::fputs(table.render().c_str(), stdout);

    // Deep-dive when exactly one workload was requested: dump the first
    // records so classification behaviour can be inspected.
    if (only.size() == 1) {
        const auto *w = workloads::findWorkload(only[0]);
        if (!w)
            return 1;
        workloads::BuildOptions opt;
        opt.heapPerturbation = 48;
        workloads::WorkloadBuild build = w->build(opt);
        sim::MachineConfig mc;
        sim::Machine machine(std::move(build.program), mc);
        build.applyTo(machine);
        pebs::PebsConfig pc;
        pc.sav = 19;
        pc.keepGroundTruth = true;
        pebs::PebsMonitor mon(machine.addressSpace(),
                              machine.program().size(), mc.timing, pc);
        machine.setPmuSink(&mon);
        machine.run();
        mon.finish();
        std::printf("records=%zu\n", mon.records().size());
        for (std::size_t i = 0; i < mon.records().size() && i < 40; ++i) {
            const auto &r = mon.records()[i];
            const auto &t = mon.truths()[i];
            std::printf("  core=%d pc=%lld addr=%llx trueAddr=%llx "
                        "load=%d\n",
                        r.core,
                        (long long)machine.addressSpace().pcToIndex(r.pc),
                        (unsigned long long)r.dataAddr,
                        (unsigned long long)t.trueAddr, t.isLoadUop);
        }
    }
    obs::exportProcessMetrics("calibrate");
    return 0;
}
