/**
 * @file
 * laser_statsd — live metrics service over obs::StatsServer.
 *
 *     laser_statsd serve [--addr A] [--port N] [--threads N]
 *                        [--duration SECONDS]
 *     laser_statsd push HOST:PORT [SNAPSHOT.json]
 *     laser_statsd get HOST:PORT PATH
 *
 * serve binds HOST:PORT (port 0 = ephemeral, printed on startup) and
 * serves /metrics, /snapshot.json, /healthz and POST /push from the
 * process registry until SIGINT/SIGTERM (or --duration elapses).
 * push POSTs a snapshot file — a METRICS_*.json, or a BENCH_*.json
 * whose "metrics" member is used — to a running server; sweep clients
 * use it to aggregate into one scrape target. get fetches one endpoint
 * and prints the body (debugging, smoke tests).
 *
 * Exit status: 0 on success, 1 on HTTP-level failure (non-2xx), 2 on
 * usage or transport errors.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/server.h"

using laser::obs::HttpResponse;
using laser::obs::Json;
using laser::obs::StatsServer;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: laser_statsd serve [--addr A] [--port N] [--threads N]\n"
        "                          [--duration SECONDS]\n"
        "       laser_statsd push HOST:PORT [SNAPSHOT.json]\n"
        "       laser_statsd get HOST:PORT PATH\n");
    return 2;
}

/** "HOST:PORT" -> (host, port); false on malformed input. */
bool
splitHostPort(const std::string &arg, std::string *host, int *port)
{
    const std::size_t colon = arg.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= arg.size())
        return false;
    *host = arg.substr(0, colon);
    *port = std::atoi(arg.c_str() + colon + 1);
    return *port > 0 && *port < 65536;
}

int
cmdServe(int argc, char **argv)
{
    StatsServer::Config cfg;
    double duration = 0.0;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--addr" && i + 1 < argc)
            cfg.bindAddr = argv[++i];
        else if (arg == "--port" && i + 1 < argc)
            cfg.port = std::atoi(argv[++i]);
        else if (arg == "--threads" && i + 1 < argc)
            cfg.threads = std::atoi(argv[++i]);
        else if (arg == "--duration" && i + 1 < argc)
            duration = std::atof(argv[++i]);
        else
            return usage();
    }

    StatsServer server(cfg);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "laser_statsd: %s\n", err.c_str());
        return 2;
    }
    std::printf("laser_statsd: serving on %s:%d\n"
                "  GET  /metrics        Prometheus text\n"
                "  GET  /snapshot.json  merged snapshot\n"
                "  GET  /healthz        liveness\n"
                "  POST /push           merge a pushed snapshot\n",
                cfg.bindAddr.c_str(), server.port());
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    const auto start = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (duration > 0.0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                    .count() >= duration)
            break;
    }
    server.stop();
    std::printf("laser_statsd: stopped after %llu push(es)\n",
                static_cast<unsigned long long>(server.pushCount()));
    return 0;
}

int
cmdPush(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    std::string host;
    int port = 0;
    if (!splitHostPort(argv[0], &host, &port))
        return usage();

    std::string body;
    if (argc >= 2) {
        std::ifstream in(argv[1], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "laser_statsd: cannot read %s\n",
                         argv[1]);
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        body = ss.str();
    } else {
        // No file: push this process's own (mostly empty) registry —
        // useful as a liveness/merge smoke probe.
        body = laser::obs::Registry::global()
                   .snapshot()
                   .toJson()
                   .dump(0);
    }

    HttpResponse resp;
    std::string err;
    if (!laser::obs::httpRequest(host, port, "POST", "/push", body,
                                 &resp, &err)) {
        std::fprintf(stderr, "laser_statsd: push failed: %s\n",
                     err.c_str());
        return 2;
    }
    std::printf("%s", resp.body.c_str());
    return resp.status == 200 ? 0 : 1;
}

int
cmdGet(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string host;
    int port = 0;
    if (!splitHostPort(argv[0], &host, &port))
        return usage();

    HttpResponse resp;
    std::string err;
    if (!laser::obs::httpRequest(host, port, "GET", argv[1], "", &resp,
                                 &err)) {
        std::fprintf(stderr, "laser_statsd: get failed: %s\n",
                     err.c_str());
        return 2;
    }
    std::fputs(resp.body.c_str(), stdout);
    return resp.status == 200 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "serve")
        return cmdServe(argc - 2, argv + 2);
    if (cmd == "push")
        return cmdPush(argc - 2, argv + 2);
    if (cmd == "get")
        return cmdGet(argc - 2, argv + 2);
    return usage();
}
