/**
 * @file
 * laser_trace: capture, inspect and replay PEBS trace files.
 *
 *   laser_trace record <workload> [-o FILE] [--sav N] [--seed N]
 *                      [--heap-shift N] [--threads N] [--scale F]
 *       Run the monitored simulation once and persist the record
 *       stream + run metadata as a trace file.
 *
 *   laser_trace info FILE
 *       Decode and print a trace's header, configuration and stats.
 *
 *   laser_trace replay FILE [--threshold F]
 *       Re-run LASERDETECT over the stored records at the given rate
 *       threshold (default: the paper's 1K HITMs/sec) — no simulation.
 *
 *   laser_trace sweep [--workloads a,b,...] [--thresholds t1,t2,...]
 *                     [--cache-dir DIR] [-j N]
 *       Capture-once/replay-many threshold sweep over the bug database
 *       (Figure 9 style), fanned across cores, optionally backed by an
 *       on-disk trace cache shared between invocations.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/accuracy.h"
#include "core/sweep_runner.h"
#include "trace/capture.h"
#include "trace/replay.h"
#include "trace/trace.h"
#include "util/table.h"
#include "workloads/workload.h"

using namespace laser;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: laser_trace <command> [options]\n"
        "  record <workload> [-o FILE] [--sav N] [--seed N]\n"
        "                    [--heap-shift N] [--threads N] [--scale F]\n"
        "  info FILE\n"
        "  replay FILE [--threshold F]\n"
        "  sweep [--workloads a,b,...] [--thresholds t1,t2,...]\n"
        "        [--cache-dir DIR] [-j N]\n");
    return 1;
}

bool
nextArg(int argc, char **argv, int *i, const char *flag, std::string *out)
{
    if (std::strcmp(argv[*i], flag) != 0)
        return false;
    if (*i + 1 >= argc) {
        std::fprintf(stderr, "laser_trace: %s needs a value\n", flag);
        std::exit(1);
    }
    *out = argv[++*i];
    return true;
}

/** Parse a full numeric value or exit with a clean error naming @p flag. */
double
numArg(const std::string &v, const char *flag)
{
    try {
        std::size_t pos = 0;
        const double d = std::stod(v, &pos);
        if (pos == v.size())
            return d;
    } catch (const std::exception &) {
    }
    std::fprintf(stderr, "laser_trace: %s: invalid numeric value \"%s\"\n",
                 flag, v.c_str());
    std::exit(1);
}

/** Parse a non-negative integer value (unsigned flags) or exit. */
std::uint64_t
uintArg(const std::string &v, const char *flag)
{
    const double d = numArg(v, flag);
    if (d < 0.0 || d > 1.8e19 || d != std::floor(d)) {
        std::fprintf(stderr,
                     "laser_trace: %s: expected a non-negative integer, "
                     "got \"%s\"\n",
                     flag, v.c_str());
        std::exit(1);
    }
    return static_cast<std::uint64_t>(d);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

void
printReport(const detect::DetectionReport &report)
{
    TablePrinter table({"location", "type", "records", "HITM/s", "ts/fs"});
    for (const detect::LineReport &line : report.lines) {
        std::string loc = line.location;
        if (line.library)
            loc += " (lib)";
        table.addRow({loc, detect::contentionTypeName(line.type),
                      std::to_string(line.records),
                      fmtDouble(line.hitmRate, 0),
                      std::to_string(line.tsEvents) + "/" +
                          std::to_string(line.fsEvents)});
    }
    if (report.lines.empty())
        std::printf("(no lines above the rate threshold)\n");
    else
        std::fputs(table.render().c_str(), stdout);
    std::printf("records: %llu total, %llu dropped by PC filter, %llu "
                "stack-data; %.2f represented seconds; repair %s\n",
                (unsigned long long)report.totalRecords,
                (unsigned long long)report.droppedPcFilter,
                (unsigned long long)report.droppedStackData,
                report.seconds,
                report.repairRequested ? "requested" : "not requested");
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string name = argv[2];
    const workloads::WorkloadDef *def = workloads::findWorkload(name);
    if (!def) {
        std::fprintf(stderr, "laser_trace: unknown workload \"%s\"\n",
                     name.c_str());
        return 1;
    }

    trace::CaptureOptions opt;
    std::string out_path = name + trace::kTraceExtension;
    std::string v;
    for (int i = 3; i < argc; ++i) {
        if (nextArg(argc, argv, &i, "-o", &v))
            out_path = v;
        else if (nextArg(argc, argv, &i, "--sav", &v))
            opt.sav = std::uint32_t(uintArg(v, "--sav"));
        else if (nextArg(argc, argv, &i, "--seed", &v))
            opt.machineSeed = uintArg(v, "--seed");
        else if (nextArg(argc, argv, &i, "--heap-shift", &v))
            opt.heapShift = uintArg(v, "--heap-shift");
        else if (nextArg(argc, argv, &i, "--threads", &v))
            opt.numThreads = int(uintArg(v, "--threads"));
        else if (nextArg(argc, argv, &i, "--scale", &v))
            opt.scale = numArg(v, "--scale");
        else
            return usage();
    }

    const trace::Trace t = trace::captureTrace(*def, opt);
    const trace::TraceStatus status = trace::writeTraceFile(t, out_path);
    if (status != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "laser_trace: writing %s failed: %s\n",
                     out_path.c_str(), trace::traceStatusName(status));
        return 2;
    }
    std::printf("captured %s: %zu records, %llu cycles (%.2f represented "
                "seconds), %llu HITM events\n",
                name.c_str(), t.records.size(),
                (unsigned long long)t.meta.runtimeCycles,
                t.meta.stats.seconds(),
                (unsigned long long)t.meta.stats.hitmTotal());
    std::printf("wrote %s (config hash %016llx)\n", out_path.c_str(),
                (unsigned long long)trace::configHash(t.meta));
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::TraceReader reader;
    const trace::TraceStatus status = reader.readFile(argv[2]);
    if (status != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "laser_trace: %s: %s (%s)\n", argv[2],
                     trace::traceStatusName(status),
                     reader.error().c_str());
        return 2;
    }
    const trace::Trace &t = reader.trace();
    std::printf("trace file:    %s\n", argv[2]);
    std::printf("format:        LSRT v%u\n", trace::kTraceVersion);
    std::printf("config hash:   %016llx\n",
                (unsigned long long)trace::configHash(t.meta));
    std::printf("workload:      %s (scheme %s)\n",
                t.meta.workload.c_str(), t.meta.scheme.c_str());
    std::printf("capture:       sav=%u threads=%d machine-seed=%llx "
                "heap-shift=%llu scale=%.2f\n",
                t.meta.pebs.sav, t.meta.build.numThreads,
                (unsigned long long)t.meta.machine.seed,
                (unsigned long long)t.meta.build.heapPerturbation,
                t.meta.build.scale);
    std::printf("run:           %llu cycles (%.2f represented seconds), "
                "%llu instructions\n",
                (unsigned long long)t.meta.runtimeCycles,
                t.meta.stats.seconds(),
                (unsigned long long)t.meta.stats.instructions);
    std::printf("hitm:          %llu loads + %llu stores\n",
                (unsigned long long)t.meta.stats.hitmLoads,
                (unsigned long long)t.meta.stats.hitmStores);
    std::printf("records:       %zu\n", t.records.size());
    std::printf("maps text:     %zu bytes\n", t.meta.mapsText.size());
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    double threshold = 1000.0;
    std::string v;
    for (int i = 3; i < argc; ++i) {
        if (nextArg(argc, argv, &i, "--threshold", &v))
            threshold = numArg(v, "--threshold");
        else
            return usage();
    }

    trace::TraceReader reader;
    const trace::TraceStatus status = reader.readFile(argv[2]);
    if (status != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "laser_trace: %s: %s (%s)\n", argv[2],
                     trace::traceStatusName(status),
                     reader.error().c_str());
        return 2;
    }
    const trace::Trace t = reader.takeTrace();
    trace::TraceReplayer replayer(t);
    if (!replayer.ok()) {
        std::fprintf(stderr, "laser_trace: %s\n",
                     replayer.error().c_str());
        return 2;
    }
    std::printf("replaying %s at %.0f HITMs/sec (sav %u, %zu records)\n\n",
                t.meta.workload.c_str(), threshold, t.meta.pebs.sav,
                t.records.size());
    printReport(replayer.replayAtThreshold(threshold));
    return 0;
}

int
cmdSweep(int argc, char **argv)
{
    std::vector<std::string> names;
    std::vector<double> thresholds = {32,   64,   128,  256,   512,  1000,
                                      2000, 4000, 8000, 16000, 32000, 64000};
    core::SweepRunner::Config rc;
    std::string v;
    for (int i = 2; i < argc; ++i) {
        if (nextArg(argc, argv, &i, "--workloads", &v))
            names = splitCommas(v);
        else if (nextArg(argc, argv, &i, "--thresholds", &v)) {
            thresholds.clear();
            for (const std::string &s : splitCommas(v))
                thresholds.push_back(numArg(s, "--thresholds"));
        } else if (nextArg(argc, argv, &i, "--cache-dir", &v))
            rc.cacheDir = v;
        else if (nextArg(argc, argv, &i, "-j", &v))
            rc.numWorkers = int(uintArg(v, "-j"));
        else
            return usage();
    }

    std::vector<const workloads::WorkloadDef *> defs;
    if (names.empty()) {
        for (const auto &w : workloads::allWorkloads())
            defs.push_back(&w);
    } else {
        for (const std::string &n : names) {
            const workloads::WorkloadDef *def = workloads::findWorkload(n);
            if (!def) {
                std::fprintf(stderr,
                             "laser_trace: unknown workload \"%s\"\n",
                             n.c_str());
                return 1;
            }
            defs.push_back(def);
        }
    }

    core::SweepRunner runner(rc);
    const core::ThresholdSweepResult sweep =
        core::thresholdSweep(runner, defs, thresholds);

    TablePrinter table(
        {"threshold (HITM/s)", "false negatives", "false positives"});
    for (const core::ThresholdSweepRow &row : sweep.rows)
        table.addRow({fmtDouble(row.threshold, 0),
                      std::to_string(row.falseNegatives),
                      std::to_string(row.falsePositives)});
    std::fputs(table.render().c_str(), stdout);

    const core::SweepStats stats = runner.stats();
    std::printf("\n%llu simulations, %llu memory cache hits, %llu disk "
                "cache hits; %zu replays on %d workers\n",
                (unsigned long long)sweep.machineRuns,
                (unsigned long long)stats.memoryCacheHits,
                (unsigned long long)stats.diskCacheHits, sweep.replays,
                runner.workers());
    if (sweep.machineRuns > 0)
        std::printf("capture %.2fs, replay %.2fs -> replay speedup "
                    "%.1fx per sweep point\n",
                    sweep.captureSeconds, sweep.replaySeconds,
                    sweep.replaySpeedup());
    else
        std::printf("capture %.2fs (fully cache-served), replay %.2fs\n",
                    sweep.captureSeconds, sweep.replaySeconds);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "replay")
        return cmdReplay(argc, argv);
    if (cmd == "sweep")
        return cmdSweep(argc, argv);
    return usage();
}
