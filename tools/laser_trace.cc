/**
 * @file
 * laser_trace: capture, inspect and replay analysis trace files.
 *
 *   laser_trace record <workload> [-o FILE] [--scheme S] [--sav N]
 *                      [--seed N] [--heap-shift N] [--threads N]
 *                      [--scale F]
 *       Run one simulation under a scheme (laser-detect, vtune,
 *       sheriff-detect, sheriff-protect, native) and persist its
 *       analysis-record stream + run metadata as a trace file.
 *
 *   laser_trace info FILE
 *       Decode and print a trace's header, configuration and stats.
 *
 *   laser_trace replay FILE [--threshold F | --thresholds t1,t2,...]
 *                      [--shards N]
 *       Re-run the trace's analysis offline — no simulation. For
 *       laser-detect traces, --shards N digests the stream as N
 *       time-window shards in parallel (verifying the merged report
 *       against the serial one and printing the speedup), and
 *       --thresholds replays several configurations from one digest
 *       (multi-config single-pass). VTune and Sheriff traces replay
 *       through their own offline analyzers.
 *
 *   laser_trace sweep [--workloads a,b,...] [--thresholds t1,t2,...]
 *                     [--cache-dir DIR] [-j N] [--shards N]
 *       Capture-once/replay-many threshold sweep over the bug database
 *       (Figure 9 style), fanned across cores, optionally backed by an
 *       on-disk trace cache shared between invocations.
 *
 *   laser_trace cache ls DIR
 *   laser_trace cache gc DIR --max-bytes N
 *       Inventory a trace-cache directory / evict least-recently-used
 *       traces until it fits the byte budget.
 *
 *   laser_trace stats [FILE] [--prom]
 *       Dump the process metrics registry snapshot as JSON (or
 *       Prometheus text with --prom). With FILE, load a previously
 *       exported METRICS_<name>.json snapshot and re-emit it instead —
 *       the offline path for converting archived snapshots.
 *
 * Every command honors LASER_METRICS_OUT=<dir>: on exit the process
 * registry snapshot (and any collected spans) is exported there as
 * METRICS_laser_trace_<command>.{json,prom}.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "core/accuracy.h"
#include "core/sweep_runner.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "trace/cache.h"
#include "trace/capture.h"
#include "trace/parallel_replay.h"
#include "trace/replay.h"
#include "trace/trace.h"
#include "util/table.h"
#include "workloads/workload.h"

using namespace laser;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: laser_trace <command> [options]\n"
        "  record <workload> [-o FILE] [--scheme S] [--sav N] [--seed N]\n"
        "                    [--heap-shift N] [--threads N] [--scale F]\n"
        "  info FILE\n"
        "  replay FILE [--threshold F | --thresholds t1,t2,...]\n"
        "         [--shards N]\n"
        "  sweep [--workloads a,b,...] [--thresholds t1,t2,...]\n"
        "        [--cache-dir DIR] [-j N] [--shards N]\n"
        "  cache ls DIR\n"
        "  cache gc DIR --max-bytes N\n"
        "  stats [FILE] [--prom]\n");
    return 1;
}

bool
nextArg(int argc, char **argv, int *i, const char *flag, std::string *out)
{
    if (std::strcmp(argv[*i], flag) != 0)
        return false;
    if (*i + 1 >= argc) {
        std::fprintf(stderr, "laser_trace: %s needs a value\n", flag);
        std::exit(1);
    }
    *out = argv[++*i];
    return true;
}

/** Parse a full numeric value or exit with a clean error naming @p flag. */
double
numArg(const std::string &v, const char *flag)
{
    try {
        std::size_t pos = 0;
        const double d = std::stod(v, &pos);
        if (pos == v.size())
            return d;
    } catch (const std::exception &) {
    }
    std::fprintf(stderr, "laser_trace: %s: invalid numeric value \"%s\"\n",
                 flag, v.c_str());
    std::exit(1);
}

/** Parse a non-negative integer value (unsigned flags) or exit. */
std::uint64_t
uintArg(const std::string &v, const char *flag)
{
    const double d = numArg(v, flag);
    if (d < 0.0 || d > 1.8e19 || d != std::floor(d)) {
        std::fprintf(stderr,
                     "laser_trace: %s: expected a non-negative integer, "
                     "got \"%s\"\n",
                     flag, v.c_str());
        std::exit(1);
    }
    return static_cast<std::uint64_t>(d);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/**
 * One-line cache summary from a runner's stats (sweep) or the global
 * registry (replay); silent when the command performed no captures.
 */
void
printCacheHitRate(const core::SweepStats &stats)
{
    if (stats.captures() == 0)
        return;
    std::printf("trace cache hit rate: %.1f%% (%llu captures: %llu "
                "simulated, %llu memory hits, %llu disk hits)\n",
                1e2 * stats.cacheHitRate(),
                (unsigned long long)stats.captures(),
                (unsigned long long)stats.machineRuns,
                (unsigned long long)stats.memoryCacheHits,
                (unsigned long long)stats.diskCacheHits);
}

/** The sweep.* counters mirrored in the global registry, as a struct. */
core::SweepStats
registrySweepStats()
{
    core::SweepStats stats;
    obs::Registry &reg = obs::Registry::global();
    stats.machineRuns = reg.counter("sweep.machine_runs").value();
    stats.memoryCacheHits =
        reg.counter("sweep.cache_hits.memory").value();
    stats.diskCacheHits = reg.counter("sweep.cache_hits.disk").value();
    return stats;
}

void
printReport(const detect::DetectionReport &report)
{
    TablePrinter table({"location", "type", "records", "HITM/s", "ts/fs"});
    for (const detect::LineReport &line : report.lines) {
        std::string loc = line.location;
        if (line.library)
            loc += " (lib)";
        table.addRow({loc, detect::contentionTypeName(line.type),
                      std::to_string(line.records),
                      fmtDouble(line.hitmRate, 0),
                      std::to_string(line.tsEvents) + "/" +
                          std::to_string(line.fsEvents)});
    }
    if (report.lines.empty())
        std::printf("(no lines above the rate threshold)\n");
    else
        std::fputs(table.render().c_str(), stdout);
    std::printf("records: %llu total, %llu dropped by PC filter, %llu "
                "stack-data; %.2f represented seconds; repair %s\n",
                (unsigned long long)report.totalRecords,
                (unsigned long long)report.droppedPcFilter,
                (unsigned long long)report.droppedStackData,
                report.seconds,
                report.repairRequested ? "requested" : "not requested");
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string name = argv[2];
    const workloads::WorkloadDef *def = workloads::findWorkload(name);
    if (!def) {
        std::fprintf(stderr, "laser_trace: unknown workload \"%s\"\n",
                     name.c_str());
        return 1;
    }

    // Resolve --scheme first (wherever it appears) so its canonical
    // defaults never clobber other flags: every remaining flag then
    // applies on top, regardless of order on the command line.
    trace::CaptureOptions opt;
    std::string v;
    for (int i = 3; i < argc; ++i) {
        if (!nextArg(argc, argv, &i, "--scheme", &v))
            continue;
        if (v != "laser-detect" && v != "vtune" &&
                v != "sheriff-detect" && v != "sheriff-protect" &&
                v != "native") {
            std::fprintf(stderr, "laser_trace: unknown scheme \"%s\"\n",
                         v.c_str());
            return 1;
        }
        opt = trace::CaptureOptions::forScheme(v);
    }

    std::string out_path = name + trace::kTraceExtension;
    for (int i = 3; i < argc; ++i) {
        if (nextArg(argc, argv, &i, "-o", &v))
            out_path = v;
        else if (nextArg(argc, argv, &i, "--scheme", &v))
            ; // handled above
        else if (nextArg(argc, argv, &i, "--sav", &v))
            opt.sav = std::uint32_t(uintArg(v, "--sav"));
        else if (nextArg(argc, argv, &i, "--seed", &v))
            opt.machineSeed = uintArg(v, "--seed");
        else if (nextArg(argc, argv, &i, "--heap-shift", &v))
            opt.heapShift = uintArg(v, "--heap-shift");
        else if (nextArg(argc, argv, &i, "--threads", &v))
            opt.numThreads = int(uintArg(v, "--threads"));
        else if (nextArg(argc, argv, &i, "--scale", &v))
            opt.scale = numArg(v, "--scale");
        else
            return usage();
    }

    const trace::Trace t = trace::captureTrace(*def, opt);
    const trace::TraceStatus status = trace::writeTraceFile(t, out_path);
    if (status != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "laser_trace: writing %s failed: %s\n",
                     out_path.c_str(), trace::traceStatusName(status));
        return 2;
    }
    std::printf("captured %s (%s): %zu records, %llu cycles (%.2f "
                "represented seconds), %llu HITM events\n",
                name.c_str(), t.meta.scheme.c_str(), t.records.size(),
                (unsigned long long)t.meta.runtimeCycles,
                t.meta.stats.seconds(),
                (unsigned long long)t.meta.stats.hitmTotal());
    std::printf("wrote %s (config hash %016llx)\n", out_path.c_str(),
                (unsigned long long)trace::configHash(t.meta));
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::TraceReader reader;
    const trace::TraceStatus status = reader.readFile(argv[2]);
    if (status != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "laser_trace: %s: %s (%s)\n", argv[2],
                     trace::traceStatusName(status),
                     reader.error().c_str());
        return 2;
    }
    const trace::Trace &t = reader.trace();
    std::printf("trace file:    %s\n", argv[2]);
    std::printf("format:        LSRT v%u\n", trace::kTraceVersion);
    std::printf("config hash:   %016llx\n",
                (unsigned long long)trace::configHash(t.meta));
    std::printf("workload:      %s (scheme %s)\n",
                t.meta.workload.c_str(), t.meta.scheme.c_str());
    std::printf("capture:       sav=%u threads=%d machine-seed=%llx "
                "heap-shift=%llu scale=%.2f\n",
                t.meta.pebs.sav, t.meta.build.numThreads,
                (unsigned long long)t.meta.machine.seed,
                (unsigned long long)t.meta.build.heapPerturbation,
                t.meta.build.scale);
    std::printf("run:           %llu cycles (%.2f represented seconds), "
                "%llu instructions\n",
                (unsigned long long)t.meta.runtimeCycles,
                t.meta.stats.seconds(),
                (unsigned long long)t.meta.stats.instructions);
    std::printf("hitm:          %llu loads + %llu stores\n",
                (unsigned long long)t.meta.stats.hitmLoads,
                (unsigned long long)t.meta.stats.hitmStores);
    std::printf("records:       %zu\n", t.records.size());
    std::printf("maps text:     %zu bytes\n", t.meta.mapsText.size());
    return 0;
}

int
replayLaser(const trace::Trace &t, const trace::TraceReplayer &replayer,
            std::vector<double> thresholds, int shards)
{
    if (thresholds.empty())
        thresholds.push_back(1000.0); // the paper's default (Section 7.1)

    std::vector<detect::DetectionReport> serial;
    if (shards > 1) {
        // Sharded pass: one config-independent digest, every threshold
        // from the merged state, identity-checked against serial.
        const trace::ShardedReplayCheck check =
            trace::checkShardedReplay(replayer, thresholds, shards);
        if (!check.identical) {
            std::fprintf(stderr,
                         "laser_trace: INVARIANT VIOLATION: sharded "
                         "replay differs from serial at threshold "
                         "%.0f\n",
                         check.mismatchThreshold);
            return 3;
        }
        std::printf("sharded replay: %d shards, %zu configs from one "
                    "digest, identical to serial; serial %.1fms vs "
                    "sharded %.1fms -> %.2fx speedup\n\n",
                    check.shards, thresholds.size(),
                    1e3 * check.serialSeconds, 1e3 * check.shardedSeconds,
                    check.speedup());
        serial = check.serialReports;
    } else {
        for (double threshold : thresholds)
            serial.push_back(replayer.replayAtThreshold(threshold));
    }

    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        std::printf("replaying %s at %.0f HITMs/sec (sav %u, %zu "
                    "records)\n\n",
                    t.meta.workload.c_str(), thresholds[i],
                    t.meta.pebs.sav, t.records.size());
        printReport(serial[i]);
        if (i + 1 < thresholds.size())
            std::printf("\n");
    }
    return 0;
}

int
replayVTuneTrace(const trace::Trace &t,
                 const trace::TraceReplayer &replayer,
                 std::vector<double> thresholds)
{
    // No explicit threshold replays at the capture-time configuration,
    // reproducing the live VTune report.
    if (thresholds.empty())
        thresholds.push_back(t.meta.vtune.rateThreshold);
    for (double threshold : thresholds) {
        baselines::VTuneConfig cfg = t.meta.vtune;
        cfg.rateThreshold = threshold;
        const baselines::VTuneReport report = replayer.replayVTune(cfg);
        std::printf("replaying %s (vtune) at %.0f HITMs/sec (%zu "
                    "records, %llu events)\n",
                    t.meta.workload.c_str(), threshold, t.records.size(),
                    (unsigned long long)report.hitmEvents);
        TablePrinter table({"location", "records", "HITM/s"});
        for (const baselines::VTuneLine &line : report.lines)
            table.addRow({line.location, std::to_string(line.records),
                          fmtDouble(line.hitmRate, 0)});
        if (report.lines.empty())
            std::printf("(no lines above the rate threshold)\n");
        else
            std::fputs(table.render().c_str(), stdout);
    }
    return 0;
}

int
replaySheriffTrace(const trace::Trace &t,
                   const trace::TraceReplayer &replayer)
{
    const trace::SheriffReplay replay = replayer.replaySheriff();
    std::printf("replaying %s (%s): %llu sync ops, %llu dirty pages "
                "committed\n",
                t.meta.workload.c_str(), t.meta.scheme.c_str(),
                (unsigned long long)replay.report.syncOps,
                (unsigned long long)replay.report.dirtyPagesCommitted);
    std::printf("commit cost %llu cycles; modeled runtime %llu cycles "
                "(%.2f represented seconds)\n",
                (unsigned long long)replay.report.chargedCycles,
                (unsigned long long)replay.estimatedRuntimeCycles,
                sim::representedSeconds(replay.estimatedRuntimeCycles));
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::vector<double> thresholds;
    int shards = 1;
    std::string v;
    for (int i = 3; i < argc; ++i) {
        if (nextArg(argc, argv, &i, "--threshold", &v))
            thresholds.assign(1, numArg(v, "--threshold"));
        else if (nextArg(argc, argv, &i, "--thresholds", &v)) {
            thresholds.clear();
            for (const std::string &s : splitCommas(v))
                thresholds.push_back(numArg(s, "--thresholds"));
        } else if (nextArg(argc, argv, &i, "--shards", &v))
            shards = int(uintArg(v, "--shards"));
        else
            return usage();
    }

    trace::TraceReader reader;
    const trace::TraceStatus status = reader.readFile(argv[2]);
    if (status != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "laser_trace: %s: %s (%s)\n", argv[2],
                     trace::traceStatusName(status),
                     reader.error().c_str());
        return 2;
    }
    const trace::Trace t = reader.takeTrace();
    trace::TraceReplayer replayer(t);
    if (!replayer.ok()) {
        std::fprintf(stderr, "laser_trace: %s\n",
                     replayer.error().c_str());
        return 2;
    }

    int rc;
    if (t.meta.scheme == "vtune") {
        rc = replayVTuneTrace(t, replayer, thresholds);
    } else if (t.meta.scheme == "sheriff-detect" ||
               t.meta.scheme == "sheriff-protect") {
        rc = replaySheriffTrace(t, replayer);
    } else if (t.meta.scheme == "native") {
        std::printf("%s is a native capture (no analysis stream); "
                    "runtime %llu cycles (%.2f represented seconds)\n",
                    t.meta.workload.c_str(),
                    (unsigned long long)t.meta.runtimeCycles,
                    sim::representedSeconds(t.meta.runtimeCycles));
        rc = 0;
    } else {
        rc = replayLaser(t, replayer, thresholds, shards);
    }
    // File replays capture nothing themselves; this reports hits only
    // when the process also ran captures (silent otherwise).
    printCacheHitRate(registrySweepStats());
    return rc;
}

int
cmdSweep(int argc, char **argv)
{
    std::vector<std::string> names;
    std::vector<double> thresholds = {32,   64,   128,  256,   512,  1000,
                                      2000, 4000, 8000, 16000, 32000, 64000};
    core::SweepRunner::Config rc;
    int shards = 0;
    std::string v;
    for (int i = 2; i < argc; ++i) {
        if (nextArg(argc, argv, &i, "--workloads", &v))
            names = splitCommas(v);
        else if (nextArg(argc, argv, &i, "--thresholds", &v)) {
            thresholds.clear();
            for (const std::string &s : splitCommas(v))
                thresholds.push_back(numArg(s, "--thresholds"));
        } else if (nextArg(argc, argv, &i, "--cache-dir", &v))
            rc.cacheDir = v;
        else if (nextArg(argc, argv, &i, "-j", &v))
            rc.numWorkers = int(uintArg(v, "-j"));
        else if (nextArg(argc, argv, &i, "--shards", &v))
            shards = int(uintArg(v, "--shards"));
        else
            return usage();
    }

    std::vector<const workloads::WorkloadDef *> defs;
    if (names.empty()) {
        for (const auto &w : workloads::allWorkloads())
            defs.push_back(&w);
    } else {
        for (const std::string &n : names) {
            const workloads::WorkloadDef *def = workloads::findWorkload(n);
            if (!def) {
                std::fprintf(stderr,
                             "laser_trace: unknown workload \"%s\"\n",
                             n.c_str());
                return 1;
            }
            defs.push_back(def);
        }
    }

    core::SweepRunner runner(rc);
    const core::ThresholdSweepResult sweep =
        core::thresholdSweep(runner, defs, thresholds, {}, shards);

    TablePrinter table(
        {"threshold (HITM/s)", "false negatives", "false positives"});
    for (const core::ThresholdSweepRow &row : sweep.rows)
        table.addRow({fmtDouble(row.threshold, 0),
                      std::to_string(row.falseNegatives),
                      std::to_string(row.falsePositives)});
    std::fputs(table.render().c_str(), stdout);

    const core::SweepStats stats = runner.stats();
    std::printf("\n%llu simulations, %llu memory cache hits, %llu disk "
                "cache hits; %zu replays (%d-shard digests) on %d "
                "workers\n",
                (unsigned long long)sweep.machineRuns,
                (unsigned long long)stats.memoryCacheHits,
                (unsigned long long)stats.diskCacheHits, sweep.replays,
                sweep.shardsPerDigest, runner.workers());
    if (sweep.machineRuns > 0)
        std::printf("capture %.2fs, digest %.2fs, replay %.2fs -> "
                    "replay speedup %.1fx per sweep point\n",
                    sweep.captureSeconds, sweep.digestSeconds,
                    sweep.replaySeconds, sweep.replaySpeedup());
    else
        std::printf("capture %.2fs (fully cache-served), digest %.2fs, "
                    "replay %.2fs\n",
                    sweep.captureSeconds, sweep.digestSeconds,
                    sweep.replaySeconds);
    printCacheHitRate(stats);
    return 0;
}

int
cmdCache(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const std::string sub = argv[2];
    const std::string dir = argv[3];

    if (sub == "ls") {
        if (argc != 4)
            return usage();
        const std::vector<trace::CacheEntry> entries =
            trace::listTraceCache(dir);
        TablePrinter table({"trace", "config hash", "bytes", "age (s)",
                            "header"});
        const auto now =
            std::filesystem::file_time_type::clock::now();
        std::uint64_t total = 0;
        for (const trace::CacheEntry &entry : entries) {
            total += entry.bytes;
            const double age =
                std::chrono::duration<double>(now - entry.mtime).count();
            char hash[17];
            std::snprintf(hash, sizeof hash, "%016llx",
                          (unsigned long long)entry.configHash);
            table.addRow({
                std::filesystem::path(entry.path).filename().string(),
                entry.status == trace::TraceStatus::Ok ? hash : "-",
                std::to_string(entry.bytes),
                fmtDouble(age < 0 ? 0.0 : age, 0),
                trace::traceStatusName(entry.status),
            });
        }
        if (entries.empty())
            std::printf("(no traces under %s)\n", dir.c_str());
        else
            std::fputs(table.render().c_str(), stdout);
        std::printf("%zu traces, %llu bytes total (oldest first = "
                    "first to evict)\n",
                    entries.size(), (unsigned long long)total);
        return 0;
    }

    if (sub == "gc") {
        std::uint64_t max_bytes = 0;
        bool have_budget = false;
        std::string v;
        for (int i = 4; i < argc; ++i) {
            if (nextArg(argc, argv, &i, "--max-bytes", &v)) {
                max_bytes = uintArg(v, "--max-bytes");
                have_budget = true;
            } else
                return usage();
        }
        if (!have_budget) {
            std::fprintf(stderr,
                         "laser_trace: cache gc requires --max-bytes N\n");
            return 1;
        }
        const trace::CacheGcResult gc =
            trace::gcTraceCache(dir, max_bytes);
        std::printf("scanned %zu traces (%llu bytes), evicted %zu "
                    "(LRU by mtime), %llu bytes remain (budget %llu)\n",
                    gc.scanned, (unsigned long long)gc.bytesBefore,
                    gc.evicted, (unsigned long long)gc.bytesAfter,
                    (unsigned long long)max_bytes);
        return 0;
    }
    return usage();
}

/**
 * Rebuild a Snapshot from a METRICS_*.json document (the inverse of
 * Snapshot::toJson, for offline --prom conversion). Returns false on a
 * structurally foreign document.
 */
bool
snapshotFromJson(const obs::Json &doc, obs::Snapshot *out)
{
    const obs::Json *counters = doc.find("counters");
    const obs::Json *gauges = doc.find("gauges");
    const obs::Json *hists = doc.find("histograms");
    if (!counters || !gauges || !hists || !counters->isObject() ||
            !gauges->isObject() || !hists->isObject())
        return false;
    for (const auto &[name, v] : counters->members())
        out->counters.emplace_back(
            name, std::uint64_t(v.asNumber()));
    for (const auto &[name, v] : gauges->members())
        out->gauges.emplace_back(name, v.asNumber());
    for (const auto &[name, v] : hists->members()) {
        obs::Histogram::Data d;
        d.count = std::uint64_t(
            v.find("count") ? v.find("count")->asNumber() : 0);
        d.sum = v.find("sum") ? v.find("sum")->asNumber() : 0.0;
        d.min = v.find("min") ? v.find("min")->asNumber() : 0.0;
        d.max = v.find("max") ? v.find("max")->asNumber() : 0.0;
        if (const obs::Json *buckets = v.find("buckets")) {
            for (const obs::Json &pair : buckets->items()) {
                if (pair.items().size() == 2)
                    d.buckets.emplace_back(
                        pair.items()[0].asNumber(),
                        std::uint64_t(pair.items()[1].asNumber()));
            }
        }
        out->histograms.emplace_back(name, std::move(d));
    }
    return true;
}

int
cmdStats(int argc, char **argv)
{
    bool prom = false;
    std::string file;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--prom") == 0)
            prom = true;
        else if (argv[i][0] != '-' && file.empty())
            file = argv[i];
        else
            return usage();
    }

    obs::Snapshot snap;
    if (file.empty()) {
        snap = obs::Registry::global().snapshot();
    } else {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "laser_trace: cannot read %s\n",
                         file.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        obs::Json doc;
        std::string err;
        if (!obs::Json::parse(ss.str(), &doc, &err)) {
            std::fprintf(stderr, "laser_trace: %s: invalid JSON: %s\n",
                         file.c_str(), err.c_str());
            return 2;
        }
        // Accept either a bare snapshot or a BENCH_*.json wrapper.
        const obs::Json *root =
            doc.find("metrics") ? doc.find("metrics") : &doc;
        if (!snapshotFromJson(*root, &snap)) {
            std::fprintf(stderr,
                         "laser_trace: %s is not a metrics snapshot\n",
                         file.c_str());
            return 2;
        }
    }

    if (prom)
        std::fputs(snap.toPrometheus().c_str(), stdout);
    else
        std::printf("%s\n", snap.toJson().dump(2).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    int rc = -1;
    if (cmd == "record")
        rc = cmdRecord(argc, argv);
    else if (cmd == "info")
        rc = cmdInfo(argc, argv);
    else if (cmd == "replay")
        rc = cmdReplay(argc, argv);
    else if (cmd == "sweep")
        rc = cmdSweep(argc, argv);
    else if (cmd == "cache")
        rc = cmdCache(argc, argv);
    else if (cmd == "stats")
        rc = cmdStats(argc, argv);
    else
        return usage();
    obs::exportProcessMetrics("laser_trace_" + cmd);
    return rc;
}
