/**
 * @file
 * laser_trace: capture, inspect and replay analysis trace files.
 *
 *   laser_trace record <workload> [-o FILE] [--scheme S] [--sav N]
 *                      [--seed N] [--heap-shift N] [--threads N]
 *                      [--scale F] [--protocol P] [--line-bytes N]
 *       Run one simulation under a scheme (laser-detect, vtune,
 *       sheriff-detect, sheriff-protect, native) and persist its
 *       analysis-record stream + run metadata as a trace file.
 *       --protocol selects the coherence backend (mesi, dragon) and
 *       --line-bytes the simulated cache-line size; both are part of
 *       the hashed configuration, so each combination gets its own
 *       trace-cache key.
 *
 *   laser_trace info FILE
 *       Decode and print a trace's header, configuration and stats.
 *       For v3+ (columnar) traces also prints the compression report:
 *       per-column compressed/uncompressed bytes, which codec each
 *       block chose per column, and block-index/seek statistics.
 *
 *   laser_trace replay FILE [--threshold F | --thresholds t1,t2,...]
 *                      [--shards N] [--cycles BEGIN:END]
 *       Re-run the trace's analysis offline — no simulation. For
 *       laser-detect traces, --shards N digests the stream as N
 *       time-window shards in parallel (verifying the merged report
 *       against the serial one and printing the speedup), and
 *       --thresholds replays several configurations from one digest
 *       (multi-config single-pass). --cycles replays only the records
 *       in a cycle window, decoding only the blocks that overlap it
 *       (v3+ traces; prints how many payload bytes the seek touched).
 *       VTune and Sheriff traces replay through their own offline
 *       analyzers.
 *
 *   laser_trace migrate PATH
 *       Upgrade a trace file — or, when PATH is a directory, every
 *       *.ltrace in it — to the current format version, re-keying
 *       cache files to their new (version-scoped) config hash.
 *
 *   laser_trace sweep [--workloads a,b,...] [--thresholds t1,t2,...]
 *                     [--cache-dir DIR] [-j N] [--shards N]
 *                     [--protocol P] [--line-bytes N]
 *       Capture-once/replay-many threshold sweep over the bug database
 *       (Figure 9 style), fanned across cores, optionally backed by an
 *       on-disk trace cache shared between invocations. --protocol /
 *       --line-bytes sweep under a different coherence backend or
 *       cache geometry.
 *
 *   laser_trace cache ls DIR
 *   laser_trace cache gc DIR --max-bytes N
 *       Inventory a trace-cache directory / evict least-recently-used
 *       traces until it fits the byte budget.
 *
 *   laser_trace stats [FILE] [--json | --prom]
 *       Dump the process metrics registry snapshot as JSON (the
 *       default, or explicitly with --json; Prometheus text with
 *       --prom). With FILE, load a previously exported
 *       METRICS_<name>.json snapshot and re-emit it instead — the
 *       offline path for converting archived snapshots.
 *
 * Every command honors LASER_METRICS_OUT=<dir>: on exit the invocation
 * is recorded there as BENCH_laser_trace_<command>.json plus the
 * METRICS_/TRACE_ artifacts (paths printed after sweep/replay), and
 * LASER_LEDGER=<file>: the same record is appended to the persistent
 * run ledger (see obs/ledger.h and tools/laser_report).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "core/accuracy.h"
#include "core/sweep_runner.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/protocol.h"
#include "trace/cache.h"
#include "trace/capture.h"
#include "trace/columnar.h"
#include "trace/parallel_replay.h"
#include "trace/replay.h"
#include "trace/trace.h"
#include "trace/trace_file.h"
#include "util/table.h"
#include "workloads/workload.h"

using namespace laser;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: laser_trace <command> [options]\n"
        "  record <workload> [-o FILE] [--scheme S] [--sav N] [--seed N]\n"
        "                    [--heap-shift N] [--threads N] [--scale F]\n"
        "                    [--protocol mesi|dragon] [--line-bytes N]\n"
        "  info FILE\n"
        "  replay FILE [--threshold F | --thresholds t1,t2,...]\n"
        "         [--shards N] [--cycles BEGIN:END]\n"
        "  migrate PATH            (trace file, or cache directory)\n"
        "  sweep [--workloads a,b,...] [--thresholds t1,t2,...]\n"
        "        [--cache-dir DIR] [-j N] [--shards N]\n"
        "        [--protocol mesi|dragon] [--line-bytes N]\n"
        "  cache ls DIR\n"
        "  cache gc DIR --max-bytes N\n"
        "  stats [FILE] [--json | --prom]\n");
    return 1;
}

bool
nextArg(int argc, char **argv, int *i, const char *flag, std::string *out)
{
    if (std::strcmp(argv[*i], flag) != 0)
        return false;
    if (*i + 1 >= argc) {
        std::fprintf(stderr, "laser_trace: %s needs a value\n", flag);
        std::exit(1);
    }
    *out = argv[++*i];
    return true;
}

/** Parse a full numeric value or exit with a clean error naming @p flag. */
double
numArg(const std::string &v, const char *flag)
{
    try {
        std::size_t pos = 0;
        const double d = std::stod(v, &pos);
        if (pos == v.size())
            return d;
    } catch (const std::exception &) {
    }
    std::fprintf(stderr, "laser_trace: %s: invalid numeric value \"%s\"\n",
                 flag, v.c_str());
    std::exit(1);
}

/** Parse a non-negative integer value (unsigned flags) or exit. */
std::uint64_t
uintArg(const std::string &v, const char *flag)
{
    const double d = numArg(v, flag);
    if (d < 0.0 || d > 1.8e19 || d != std::floor(d)) {
        std::fprintf(stderr,
                     "laser_trace: %s: expected a non-negative integer, "
                     "got \"%s\"\n",
                     flag, v.c_str());
        std::exit(1);
    }
    return static_cast<std::uint64_t>(d);
}

/** Apply a --protocol value to @p opt or exit with a clean error. */
void
protocolArg(const std::string &v, trace::CaptureOptions *opt)
{
    if (!sim::parseProtocol(v, &opt->protocol)) {
        std::fprintf(stderr,
                     "laser_trace: unknown protocol \"%s\" (expected "
                     "mesi or dragon)\n",
                     v.c_str());
        std::exit(1);
    }
}

/** Apply a --line-bytes value to @p opt or exit with a clean error. */
void
lineBytesArg(const std::string &v, trace::CaptureOptions *opt)
{
    opt->geometry.lineBytes =
        static_cast<std::uint32_t>(uintArg(v, "--line-bytes"));
    if (!opt->geometry.valid()) {
        std::fprintf(stderr,
                     "laser_trace: --line-bytes must be a power of two "
                     "in [8, 128], got \"%s\"\n",
                     v.c_str());
        std::exit(1);
    }
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/**
 * One-line cache summary from a runner's stats (sweep) or the global
 * registry (replay); silent when the command performed no captures.
 */
void
printCacheHitRate(const core::SweepStats &stats)
{
    if (stats.captures() == 0)
        return;
    const std::uint64_t writeFailures =
        obs::Registry::global()
            .counter("trace.cache.write_failures")
            .value();
    std::printf("trace cache hit rate: %.1f%% (%llu captures: %llu "
                "simulated, %llu memory hits, %llu disk hits, %llu "
                "write failures)\n",
                1e2 * stats.cacheHitRate(),
                (unsigned long long)stats.captures(),
                (unsigned long long)stats.machineRuns,
                (unsigned long long)stats.memoryCacheHits,
                (unsigned long long)stats.diskCacheHits,
                (unsigned long long)writeFailures);
    if (writeFailures > 0)
        std::fprintf(stderr,
                     "laser_trace: warning: %llu trace-cache write "
                     "failure(s) — the cache dir is unwritable or full, "
                     "so repeat runs will re-simulate instead of "
                     "hitting disk\n",
                     (unsigned long long)writeFailures);
}

/** The sweep.* counters mirrored in the global registry, as a struct. */
core::SweepStats
registrySweepStats()
{
    core::SweepStats stats;
    obs::Registry &reg = obs::Registry::global();
    stats.machineRuns = reg.counter("sweep.machine_runs").value();
    stats.memoryCacheHits =
        reg.counter("sweep.cache_hits.memory").value();
    stats.diskCacheHits = reg.counter("sweep.cache_hits.disk").value();
    return stats;
}

void
printReport(const detect::DetectionReport &report)
{
    TablePrinter table({"location", "type", "records", "HITM/s", "ts/fs"});
    for (const detect::LineReport &line : report.lines) {
        std::string loc = line.location;
        if (line.library)
            loc += " (lib)";
        table.addRow({loc, detect::contentionTypeName(line.type),
                      std::to_string(line.records),
                      fmtDouble(line.hitmRate, 0),
                      std::to_string(line.tsEvents) + "/" +
                          std::to_string(line.fsEvents)});
    }
    if (report.lines.empty())
        std::printf("(no lines above the rate threshold)\n");
    else
        std::fputs(table.render().c_str(), stdout);
    std::printf("records: %llu total, %llu dropped by PC filter, %llu "
                "stack-data; %.2f represented seconds; repair %s\n",
                (unsigned long long)report.totalRecords,
                (unsigned long long)report.droppedPcFilter,
                (unsigned long long)report.droppedStackData,
                report.seconds,
                report.repairRequested ? "requested" : "not requested");
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string name = argv[2];
    const workloads::WorkloadDef *def = workloads::findWorkload(name);
    if (!def) {
        std::fprintf(stderr, "laser_trace: unknown workload \"%s\"\n",
                     name.c_str());
        return 1;
    }

    // Resolve --scheme first (wherever it appears) so its canonical
    // defaults never clobber other flags: every remaining flag then
    // applies on top, regardless of order on the command line.
    trace::CaptureOptions opt;
    std::string v;
    for (int i = 3; i < argc; ++i) {
        if (!nextArg(argc, argv, &i, "--scheme", &v))
            continue;
        if (v != "laser-detect" && v != "vtune" &&
                v != "sheriff-detect" && v != "sheriff-protect" &&
                v != "native") {
            std::fprintf(stderr, "laser_trace: unknown scheme \"%s\"\n",
                         v.c_str());
            return 1;
        }
        opt = trace::CaptureOptions::forScheme(v);
    }

    std::string out_path = name + trace::kTraceExtension;
    for (int i = 3; i < argc; ++i) {
        if (nextArg(argc, argv, &i, "-o", &v))
            out_path = v;
        else if (nextArg(argc, argv, &i, "--scheme", &v))
            ; // handled above
        else if (nextArg(argc, argv, &i, "--sav", &v))
            opt.sav = std::uint32_t(uintArg(v, "--sav"));
        else if (nextArg(argc, argv, &i, "--seed", &v))
            opt.machineSeed = uintArg(v, "--seed");
        else if (nextArg(argc, argv, &i, "--heap-shift", &v))
            opt.heapShift = uintArg(v, "--heap-shift");
        else if (nextArg(argc, argv, &i, "--threads", &v))
            opt.numThreads = int(uintArg(v, "--threads"));
        else if (nextArg(argc, argv, &i, "--scale", &v))
            opt.scale = numArg(v, "--scale");
        else if (nextArg(argc, argv, &i, "--protocol", &v))
            protocolArg(v, &opt);
        else if (nextArg(argc, argv, &i, "--line-bytes", &v))
            lineBytesArg(v, &opt);
        else
            return usage();
    }

    const trace::Trace t = trace::captureTrace(*def, opt);
    const trace::TraceStatus status = trace::writeTraceFile(t, out_path);
    if (status != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "laser_trace: writing %s failed: %s\n",
                     out_path.c_str(), trace::traceStatusName(status));
        return 2;
    }
    std::printf("captured %s (%s): %zu records, %llu cycles (%.2f "
                "represented seconds), %llu HITM events\n",
                name.c_str(), t.meta.scheme.c_str(), t.records.size(),
                (unsigned long long)t.meta.runtimeCycles,
                t.meta.stats.seconds(),
                (unsigned long long)t.meta.stats.hitmTotal());
    std::printf("wrote %s (config hash %016llx)\n", out_path.c_str(),
                (unsigned long long)trace::configHash(t.meta));
    return 0;
}

void
printMetaInfo(const char *path, std::uint32_t version,
              const trace::TraceMeta &meta, std::size_t records)
{
    std::printf("trace file:    %s\n", path);
    std::printf("format:        LSRT v%u%s\n", version,
                version < 3 ? " (row-wise legacy; run `laser_trace "
                              "migrate` to upgrade)"
                            : " (columnar)");
    std::printf("config hash:   %016llx\n",
                (unsigned long long)trace::configHashForVersion(meta,
                                                                version));
    std::printf("workload:      %s (scheme %s)\n", meta.workload.c_str(),
                meta.scheme.c_str());
    std::printf("capture:       sav=%u threads=%d machine-seed=%llx "
                "heap-shift=%llu scale=%.2f\n",
                meta.pebs.sav, meta.build.numThreads,
                (unsigned long long)meta.machine.seed,
                (unsigned long long)meta.build.heapPerturbation,
                meta.build.scale);
    std::printf("coherence:     %s, %u-byte lines%s\n",
                sim::protocolName(meta.machine.protocol),
                meta.machine.geometry.lineBytes,
                meta.machine.geometry.bounded() ? " (bounded)"
                                                : "");
    std::printf("run:           %llu cycles (%.2f represented seconds), "
                "%llu instructions\n",
                (unsigned long long)meta.runtimeCycles,
                meta.stats.seconds(),
                (unsigned long long)meta.stats.instructions);
    std::printf("hitm:          %llu loads + %llu stores\n",
                (unsigned long long)meta.stats.hitmLoads,
                (unsigned long long)meta.stats.hitmStores);
    std::printf("records:       %zu\n", records);
    std::printf("maps text:     %zu bytes\n", meta.mapsText.size());
}

/** The v3+ compression/seek report: per-column bytes + codec mix. */
void
printColumnarInfo(const trace::TraceFile &file)
{
    namespace col = trace::columnar;
    const col::BlockIndex &index = file.index();
    const std::uint64_t records = index.records;

    std::printf("\nblock index:   %zu blocks, %s records/block avg",
                index.blocks.size(),
                index.blocks.empty()
                    ? "0"
                    : fmtCount(records / index.blocks.size()).c_str());
    if (!index.blocks.empty()) {
        const std::uint64_t span =
            index.blocks.back().lastCycle - index.blocks.front().firstCycle;
        std::printf(", seek granularity ~%s cycles",
                    fmtCount(span / index.blocks.size()).c_str());
    }
    std::printf("\n");
    std::printf("payload:       %s total, %s record blob (raw columns "
                "would be %s)\n",
                humanBytes(file.payloadBytes()).c_str(),
                humanBytes(file.recordBlobBytes()).c_str(),
                humanBytes(records * 8 * col::kColumnCount).c_str());

    TablePrinter table({"column", "compressed", "raw", "ratio", "codecs"});
    for (std::size_t c = 0; c < col::kColumnCount; ++c) {
        std::uint64_t bytes = 0;
        std::uint64_t codec_blocks[col::kCodecCount] = {};
        for (const col::BlockInfo &b : index.blocks) {
            bytes += b.columnBytes[c];
            ++codec_blocks[static_cast<std::uint8_t>(b.codec[c])];
        }
        const std::uint64_t raw = records * 8;
        std::string codecs;
        for (std::uint8_t k = 0; k < col::kCodecCount; ++k) {
            if (codec_blocks[k] == 0)
                continue;
            if (!codecs.empty())
                codecs += ", ";
            codecs += std::string(col::codecName(
                          static_cast<col::ColumnCodec>(k))) +
                      " x" + std::to_string(codec_blocks[k]);
        }
        table.addRow({col::columnName(c), humanBytes(bytes),
                      humanBytes(raw),
                      bytes > 0 ? fmtTimes(double(raw) / double(bytes))
                                : "-",
                      codecs.empty() ? "-" : codecs});
    }
    std::fputs(table.render().c_str(), stdout);
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();

    // v3+ files: header + meta + index only (no record decode needed
    // for an inventory view). v1/v2 fall back to the full reader.
    trace::TraceFile file;
    const trace::TraceStatus seek_status = file.open(argv[2]);
    if (seek_status == trace::TraceStatus::Ok) {
        printMetaInfo(argv[2], trace::kTraceVersion, file.meta(),
                      static_cast<std::size_t>(file.recordCount()));
        printColumnarInfo(file);
        return 0;
    }
    if (seek_status != trace::TraceStatus::BadVersion) {
        std::fprintf(stderr, "laser_trace: %s: %s (%s)\n", argv[2],
                     trace::traceStatusName(seek_status),
                     file.error().c_str());
        return 2;
    }

    trace::TraceReader reader;
    const trace::TraceStatus status = reader.readFile(argv[2]);
    if (status != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "laser_trace: %s: %s (%s)\n", argv[2],
                     trace::traceStatusName(status),
                     reader.error().c_str());
        return 2;
    }
    printMetaInfo(argv[2], reader.version(), reader.trace().meta,
                  reader.trace().records.size());
    return 0;
}

int
replayLaser(const trace::Trace &t, const trace::TraceReplayer &replayer,
            std::vector<double> thresholds, int shards)
{
    if (thresholds.empty())
        thresholds.push_back(1000.0); // the paper's default (Section 7.1)

    std::vector<detect::DetectionReport> serial;
    if (shards > 1) {
        // Sharded pass: one config-independent digest, every threshold
        // from the merged state, identity-checked against serial.
        const trace::ShardedReplayCheck check =
            trace::checkShardedReplay(replayer, thresholds, shards);
        if (!check.identical) {
            std::fprintf(stderr,
                         "laser_trace: INVARIANT VIOLATION: sharded "
                         "replay differs from serial at threshold "
                         "%.0f\n",
                         check.mismatchThreshold);
            return 3;
        }
        std::printf("sharded replay: %d shards, %zu configs from one "
                    "digest, identical to serial; serial %.1fms vs "
                    "sharded %.1fms -> %.2fx speedup\n\n",
                    check.shards, thresholds.size(),
                    1e3 * check.serialSeconds, 1e3 * check.shardedSeconds,
                    check.speedup());
        serial = check.serialReports;
    } else {
        for (double threshold : thresholds)
            serial.push_back(replayer.replayAtThreshold(threshold));
    }

    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        std::printf("replaying %s at %.0f HITMs/sec (sav %u, %zu "
                    "records)\n\n",
                    t.meta.workload.c_str(), thresholds[i],
                    t.meta.pebs.sav, t.records.size());
        printReport(serial[i]);
        if (i + 1 < thresholds.size())
            std::printf("\n");
    }
    return 0;
}

int
replayVTuneTrace(const trace::Trace &t,
                 const trace::TraceReplayer &replayer,
                 std::vector<double> thresholds)
{
    // No explicit threshold replays at the capture-time configuration,
    // reproducing the live VTune report.
    if (thresholds.empty())
        thresholds.push_back(t.meta.vtune.rateThreshold);
    for (double threshold : thresholds) {
        baselines::VTuneConfig cfg = t.meta.vtune;
        cfg.rateThreshold = threshold;
        const baselines::VTuneReport report = replayer.replayVTune(cfg);
        std::printf("replaying %s (vtune) at %.0f HITMs/sec (%zu "
                    "records, %llu events)\n",
                    t.meta.workload.c_str(), threshold, t.records.size(),
                    (unsigned long long)report.hitmEvents);
        TablePrinter table({"location", "records", "HITM/s"});
        for (const baselines::VTuneLine &line : report.lines)
            table.addRow({line.location, std::to_string(line.records),
                          fmtDouble(line.hitmRate, 0)});
        if (report.lines.empty())
            std::printf("(no lines above the rate threshold)\n");
        else
            std::fputs(table.render().c_str(), stdout);
    }
    return 0;
}

int
replaySheriffTrace(const trace::Trace &t,
                   const trace::TraceReplayer &replayer)
{
    const trace::SheriffReplay replay = replayer.replaySheriff();
    std::printf("replaying %s (%s): %llu sync ops, %llu dirty pages "
                "committed\n",
                t.meta.workload.c_str(), t.meta.scheme.c_str(),
                (unsigned long long)replay.report.syncOps,
                (unsigned long long)replay.report.dirtyPagesCommitted);
    std::printf("commit cost %llu cycles; modeled runtime %llu cycles "
                "(%.2f represented seconds)\n",
                (unsigned long long)replay.report.chargedCycles,
                (unsigned long long)replay.estimatedRuntimeCycles,
                sim::representedSeconds(replay.estimatedRuntimeCycles));
    return 0;
}

/**
 * Windowed replay over a seekable trace: decode only the blocks
 * overlapping [begin, end) and report how much of the payload the seek
 * actually touched.
 */
int
replayLaserCycles(const trace::TraceFile &file,
                  const trace::TraceReplayer &replayer,
                  std::vector<double> thresholds, std::uint64_t begin,
                  std::uint64_t end)
{
    if (thresholds.empty())
        thresholds.push_back(1000.0); // the paper's default (Section 7.1)
    obs::Counter &bytes_read =
        obs::Registry::global().counter("trace.file.bytes_read");

    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        detect::DetectorConfig cfg;
        cfg.rateThreshold = thresholds[i];
        cfg.sav = file.meta().pebs.sav;
        detect::DetectorPipeline pipeline(replayer.context(), cfg);
        const std::uint64_t before = bytes_read.value();
        const std::unique_ptr<trace::RecordCursor> cur =
            file.cursorForCycles(begin, end);
        const std::uint64_t windowed = cur->drain(pipeline);
        if (cur->status() != trace::TraceStatus::Ok) {
            std::fprintf(stderr,
                         "laser_trace: window decode failed: %s\n",
                         trace::traceStatusName(cur->status()));
            return 2;
        }
        const detect::DetectionReport report =
            pipeline.finish(file.meta().runtimeCycles);
        std::printf("replaying %s cycles [%llu, %llu) at %.0f HITMs/sec "
                    "(sav %u): %llu of %llu records\n",
                    file.meta().workload.c_str(),
                    (unsigned long long)begin, (unsigned long long)end,
                    thresholds[i], file.meta().pebs.sav,
                    (unsigned long long)windowed,
                    (unsigned long long)file.recordCount());
        std::printf("seek decoded %s of %s record-blob bytes (%.1f%% of "
                    "the payload)\n\n",
                    humanBytes(bytes_read.value() - before).c_str(),
                    humanBytes(file.recordBlobBytes()).c_str(),
                    file.payloadBytes() > 0
                        ? 1e2 * double(bytes_read.value() - before) /
                              double(file.payloadBytes())
                        : 0.0);
        printReport(report);
        if (i + 1 < thresholds.size())
            std::printf("\n");
    }
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::vector<double> thresholds;
    int shards = 1;
    bool have_cycles = false;
    std::uint64_t cycle_begin = 0;
    std::uint64_t cycle_end = 0;
    std::string v;
    for (int i = 3; i < argc; ++i) {
        if (nextArg(argc, argv, &i, "--threshold", &v))
            thresholds.assign(1, numArg(v, "--threshold"));
        else if (nextArg(argc, argv, &i, "--thresholds", &v)) {
            thresholds.clear();
            for (const std::string &s : splitCommas(v))
                thresholds.push_back(numArg(s, "--thresholds"));
        } else if (nextArg(argc, argv, &i, "--shards", &v))
            shards = int(uintArg(v, "--shards"));
        else if (nextArg(argc, argv, &i, "--cycles", &v)) {
            const std::size_t colon = v.find(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr, "laser_trace: --cycles expects "
                                     "BEGIN:END\n");
                return 1;
            }
            cycle_begin = uintArg(v.substr(0, colon), "--cycles");
            cycle_end = uintArg(v.substr(colon + 1), "--cycles");
            if (cycle_end <= cycle_begin) {
                std::fprintf(stderr, "laser_trace: --cycles window is "
                                     "empty\n");
                return 1;
            }
            have_cycles = true;
        } else
            return usage();
    }

    if (have_cycles) {
        // The windowed path needs the block index; it never touches
        // blocks outside the window.
        trace::TraceFile file;
        const trace::TraceStatus status = file.open(argv[2]);
        if (status != trace::TraceStatus::Ok) {
            std::fprintf(stderr, "laser_trace: %s: %s (%s)\n", argv[2],
                         trace::traceStatusName(status),
                         file.error().c_str());
            return 2;
        }
        if (file.meta().scheme != "laser-detect") {
            std::fprintf(stderr,
                         "laser_trace: --cycles replays laser-detect "
                         "traces (this is \"%s\")\n",
                         file.meta().scheme.c_str());
            return 1;
        }
        trace::TraceReplayer replayer(file.meta(), file);
        if (!replayer.ok()) {
            std::fprintf(stderr, "laser_trace: %s\n",
                         replayer.error().c_str());
            return 2;
        }
        return replayLaserCycles(file, replayer, thresholds, cycle_begin,
                                 cycle_end);
    }

    trace::TraceReader reader;
    const trace::TraceStatus status = reader.readFile(argv[2]);
    if (status != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "laser_trace: %s: %s (%s)\n", argv[2],
                     trace::traceStatusName(status),
                     reader.error().c_str());
        return 2;
    }
    const trace::Trace t = reader.takeTrace();
    trace::TraceReplayer replayer(t);
    if (!replayer.ok()) {
        std::fprintf(stderr, "laser_trace: %s\n",
                     replayer.error().c_str());
        return 2;
    }

    int rc;
    if (t.meta.scheme == "vtune") {
        rc = replayVTuneTrace(t, replayer, thresholds);
    } else if (t.meta.scheme == "sheriff-detect" ||
               t.meta.scheme == "sheriff-protect") {
        rc = replaySheriffTrace(t, replayer);
    } else if (t.meta.scheme == "native") {
        std::printf("%s is a native capture (no analysis stream); "
                    "runtime %llu cycles (%.2f represented seconds)\n",
                    t.meta.workload.c_str(),
                    (unsigned long long)t.meta.runtimeCycles,
                    sim::representedSeconds(t.meta.runtimeCycles));
        rc = 0;
    } else {
        rc = replayLaser(t, replayer, thresholds, shards);
    }
    // File replays capture nothing themselves; this reports hits only
    // when the process also ran captures (silent otherwise).
    printCacheHitRate(registrySweepStats());
    return rc;
}

int
cmdSweep(int argc, char **argv)
{
    std::vector<std::string> names;
    std::vector<double> thresholds = {32,   64,   128,  256,   512,  1000,
                                      2000, 4000, 8000, 16000, 32000, 64000};
    core::SweepRunner::Config rc;
    trace::CaptureOptions opt;
    int shards = 0;
    std::string v;
    for (int i = 2; i < argc; ++i) {
        if (nextArg(argc, argv, &i, "--workloads", &v))
            names = splitCommas(v);
        else if (nextArg(argc, argv, &i, "--thresholds", &v)) {
            thresholds.clear();
            for (const std::string &s : splitCommas(v))
                thresholds.push_back(numArg(s, "--thresholds"));
        } else if (nextArg(argc, argv, &i, "--cache-dir", &v))
            rc.cacheDir = v;
        else if (nextArg(argc, argv, &i, "-j", &v))
            rc.numWorkers = int(uintArg(v, "-j"));
        else if (nextArg(argc, argv, &i, "--shards", &v))
            shards = int(uintArg(v, "--shards"));
        else if (nextArg(argc, argv, &i, "--protocol", &v))
            protocolArg(v, &opt);
        else if (nextArg(argc, argv, &i, "--line-bytes", &v))
            lineBytesArg(v, &opt);
        else
            return usage();
    }

    std::vector<const workloads::WorkloadDef *> defs;
    if (names.empty()) {
        for (const auto &w : workloads::allWorkloads())
            defs.push_back(&w);
    } else {
        for (const std::string &n : names) {
            const workloads::WorkloadDef *def = workloads::findWorkload(n);
            if (!def) {
                std::fprintf(stderr,
                             "laser_trace: unknown workload \"%s\"\n",
                             n.c_str());
                return 1;
            }
            defs.push_back(def);
        }
    }

    core::SweepRunner runner(rc);
    const core::ThresholdSweepResult sweep =
        core::thresholdSweep(runner, defs, thresholds, opt, shards);

    TablePrinter table(
        {"threshold (HITM/s)", "false negatives", "false positives"});
    for (const core::ThresholdSweepRow &row : sweep.rows)
        table.addRow({fmtDouble(row.threshold, 0),
                      std::to_string(row.falseNegatives),
                      std::to_string(row.falsePositives)});
    std::fputs(table.render().c_str(), stdout);

    const core::SweepStats stats = runner.stats();
    std::printf("\n%llu simulations, %llu memory cache hits, %llu disk "
                "cache hits; %zu replays (%d-shard digests) on %d "
                "workers\n",
                (unsigned long long)sweep.machineRuns,
                (unsigned long long)stats.memoryCacheHits,
                (unsigned long long)stats.diskCacheHits, sweep.replays,
                sweep.shardsPerDigest, runner.workers());
    if (sweep.machineRuns > 0)
        std::printf("capture %.2fs, digest %.2fs, replay %.2fs -> "
                    "replay speedup %.1fx per sweep point\n",
                    sweep.captureSeconds, sweep.digestSeconds,
                    sweep.replaySeconds, sweep.replaySpeedup());
    else
        std::printf("capture %.2fs (fully cache-served), digest %.2fs, "
                    "replay %.2fs\n",
                    sweep.captureSeconds, sweep.digestSeconds,
                    sweep.replaySeconds);
    printCacheHitRate(stats);
    return 0;
}

int
cmdCache(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const std::string sub = argv[2];
    const std::string dir = argv[3];

    if (sub == "ls") {
        if (argc != 4)
            return usage();
        const std::vector<trace::CacheEntry> entries =
            trace::listTraceCache(dir);
        TablePrinter table({"trace", "config hash", "ver", "size",
                            "age (s)", "header"});
        const auto now =
            std::filesystem::file_time_type::clock::now();
        std::uint64_t total = 0;
        for (const trace::CacheEntry &entry : entries) {
            total += entry.bytes;
            const double age =
                std::chrono::duration<double>(now - entry.mtime).count();
            char hash[17];
            std::snprintf(hash, sizeof hash, "%016llx",
                          (unsigned long long)entry.configHash);
            table.addRow({
                std::filesystem::path(entry.path).filename().string(),
                entry.status == trace::TraceStatus::Ok ? hash : "-",
                entry.status == trace::TraceStatus::Ok
                    ? "v" + std::to_string(entry.version)
                    : "-",
                humanBytes(entry.bytes),
                fmtDouble(age < 0 ? 0.0 : age, 0),
                trace::traceStatusName(entry.status),
            });
        }
        if (entries.empty())
            std::printf("(no traces under %s)\n", dir.c_str());
        else
            std::fputs(table.render().c_str(), stdout);
        std::printf("%zu traces, %s total (oldest first = "
                    "first to evict)\n",
                    entries.size(), humanBytes(total).c_str());
        return 0;
    }

    if (sub == "gc") {
        std::uint64_t max_bytes = 0;
        bool have_budget = false;
        std::string v;
        for (int i = 4; i < argc; ++i) {
            if (nextArg(argc, argv, &i, "--max-bytes", &v)) {
                max_bytes = uintArg(v, "--max-bytes");
                have_budget = true;
            } else
                return usage();
        }
        if (!have_budget) {
            std::fprintf(stderr,
                         "laser_trace: cache gc requires --max-bytes N\n");
            return 1;
        }
        const trace::CacheGcResult gc =
            trace::gcTraceCache(dir, max_bytes);
        std::printf("scanned %zu traces (%s), evicted %zu (LRU by "
                    "mtime), spared %zu just-used, %zu vanished, "
                    "%s remain (budget %s)\n",
                    gc.scanned, humanBytes(gc.bytesBefore).c_str(),
                    gc.evicted, gc.spared, gc.vanished,
                    humanBytes(gc.bytesAfter).c_str(),
                    humanBytes(max_bytes).c_str());
        return 0;
    }
    return usage();
}

int
cmdMigrate(int argc, char **argv)
{
    if (argc != 3)
        return usage();
    const std::string path = argv[2];
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
        const trace::CacheMigrateResult result =
            trace::migrateTraceCache(path);
        std::printf("scanned %zu traces: %zu upgraded to v%u, %zu "
                    "already current, %zu failed\n",
                    result.scanned, result.upgraded,
                    trace::kTraceVersion, result.alreadyCurrent,
                    result.failed);
        std::printf("cache size %s -> %s\n",
                    humanBytes(result.bytesBefore).c_str(),
                    humanBytes(result.bytesAfter).c_str());
        return result.failed == 0 ? 0 : 2;
    }

    const trace::MigrateFileResult result =
        trace::migrateTraceFile(path);
    if (result.status != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "laser_trace: %s: %s (%s)\n", path.c_str(),
                     trace::traceStatusName(result.status),
                     result.error.c_str());
        return 2;
    }
    if (!result.upgraded) {
        std::printf("%s is already v%u\n", path.c_str(),
                    trace::kTraceVersion);
        return 0;
    }
    if (result.newPath != path)
        std::printf("upgraded %s -> %s (re-keyed to the v%u config "
                    "hash)\n",
                    path.c_str(), result.newPath.c_str(),
                    trace::kTraceVersion);
    else
        std::printf("upgraded %s to v%u in place\n", path.c_str(),
                    trace::kTraceVersion);
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    bool prom = false;
    bool json = false;
    std::string file;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--prom") == 0)
            prom = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (argv[i][0] != '-' && file.empty())
            file = argv[i];
        else
            return usage();
    }
    if (prom && json) {
        std::fprintf(stderr,
                     "laser_trace: --prom and --json are exclusive\n");
        return usage();
    }

    obs::Snapshot snap;
    if (file.empty()) {
        snap = obs::Registry::global().snapshot();
    } else {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "laser_trace: cannot read %s\n",
                         file.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        obs::Json doc;
        std::string err;
        if (!obs::Json::parse(ss.str(), &doc, &err)) {
            std::fprintf(stderr, "laser_trace: %s: invalid JSON: %s\n",
                         file.c_str(), err.c_str());
            return 2;
        }
        // Accept either a bare snapshot or a BENCH_*.json wrapper.
        const obs::Json *root =
            doc.find("metrics") ? doc.find("metrics") : &doc;
        if (!obs::Snapshot::fromJson(*root, &snap)) {
            std::fprintf(stderr,
                         "laser_trace: %s is not a metrics snapshot\n",
                         file.c_str());
            return 2;
        }
    }

    // JSON is the default; --json requests it explicitly (mirrors
    // --prom, keeps scripts self-documenting).
    if (prom)
        std::fputs(snap.toPrometheus().c_str(), stdout);
    else
        std::printf("%s\n", snap.toJson().dump(2).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd != "record" && cmd != "info" && cmd != "replay" &&
        cmd != "sweep" && cmd != "cache" && cmd != "migrate" &&
        cmd != "stats")
        return usage();

    // Every invocation is one telemetry record: BENCH_laser_trace_<cmd>
    // under LASER_METRICS_OUT (which also exports the METRICS_/TRACE_
    // artifacts) and one ledger line under LASER_LEDGER.
    obs::BenchReport invocation("laser_trace_" + cmd);

    int rc = -1;
    if (cmd == "record")
        rc = cmdRecord(argc, argv);
    else if (cmd == "info")
        rc = cmdInfo(argc, argv);
    else if (cmd == "replay")
        rc = cmdReplay(argc, argv);
    else if (cmd == "sweep")
        rc = cmdSweep(argc, argv);
    else if (cmd == "cache")
        rc = cmdCache(argc, argv);
    else if (cmd == "migrate")
        rc = cmdMigrate(argc, argv);
    else if (cmd == "stats")
        rc = cmdStats(argc, argv);

    invocation.results().set("command", obs::Json(cmd));
    invocation.results().set("exit_status", obs::Json(rc));
    if (cmd == "sweep" || cmd == "replay") {
        const core::SweepStats stats = registrySweepStats();
        invocation.setSweep(stats.machineRuns, stats.memoryCacheHits,
                            stats.diskCacheHits);
    }
    const bool wrote = invocation.write();

    // Tell the user where the artifacts went after the heavyweight
    // commands, so nothing has to be guessed from env vars.
    if (wrote && (cmd == "sweep" || cmd == "replay")) {
        const std::string dir = obs::metricsDir();
        const std::string name = "laser_trace_" + cmd;
        std::printf("telemetry artifacts (LASER_METRICS_OUT=%s):\n"
                    "  %s/BENCH_%s.json\n"
                    "  %s/METRICS_%s.json\n"
                    "  %s/METRICS_%s.prom\n",
                    dir.c_str(), dir.c_str(), name.c_str(), dir.c_str(),
                    name.c_str(), dir.c_str(), name.c_str());
        if (obs::SpanCollector::global().eventCount() > 0) {
            const char *traceOverride =
                std::getenv("LASER_TRACE_EVENTS");
            if (traceOverride)
                std::printf("  %s\n", traceOverride);
            else
                std::printf("  %s/TRACE_%s.json\n", dir.c_str(),
                            name.c_str());
        }
    }
    const std::string ledger = obs::ledgerPath();
    if (!ledger.empty())
        std::printf("ledger: appended laser_trace_%s run to %s\n",
                    cmd.c_str(), ledger.c_str());
    return rc;
}
