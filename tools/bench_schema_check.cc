/**
 * @file
 * Validator for the BENCH_<name>.json telemetry artifacts (schema v2,
 * documented in EXPERIMENTS.md and obs/export.h; v2 adds the "run"
 * context object and the optional "artifacts" path map). CI runs it
 * over every file the bench-smoke step produces, so a bench that
 * drifts from the schema fails the build rather than silently shipping
 * malformed telemetry. Ledger records (obs/ledger.h) carry the same
 * document, so a validated BENCH file implies a valid ledger line.
 *
 *     bench_schema_check FILE...
 *     bench_schema_check --dir DIR     # every BENCH_*.json under DIR
 *
 * Exit status: 0 when every file validates, 1 otherwise (per-file
 * diagnostics on stderr).
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"

using laser::obs::Json;

namespace {

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/** Accumulates "field: problem" diagnostics for one file. */
struct Checker
{
    std::vector<std::string> problems;

    void
    flag(const std::string &what)
    {
        problems.push_back(what);
    }

    const Json *
    requireMember(const Json &doc, const char *key)
    {
        const Json *v = doc.find(key);
        if (!v)
            flag(std::string("missing required member \"") + key + "\"");
        return v;
    }

    void
    requireNonNegativeInteger(const Json *v, const char *key)
    {
        if (!v)
            return;
        const double d = v->asNumber(-1.0);
        if (!v->isNumber() || d < 0 || d != std::floor(d))
            flag(std::string("\"") + key +
                 "\" must be a non-negative integer");
    }
};

bool
validate(const std::string &path)
{
    std::string text;
    if (!readFile(path, &text)) {
        std::fprintf(stderr, "%s: cannot read\n", path.c_str());
        return false;
    }
    Json doc;
    std::string err;
    if (!Json::parse(text, &doc, &err)) {
        std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }

    Checker ck;
    if (!doc.isObject()) {
        ck.flag("root must be an object");
    } else {
        const Json *ver = ck.requireMember(doc, "schema_version");
        if (ver && ver->asNumber(-1.0) !=
                       double(laser::obs::kBenchSchemaVersion))
            ck.flag("\"schema_version\" must be " +
                    std::to_string(laser::obs::kBenchSchemaVersion));

        const Json *bench = ck.requireMember(doc, "bench");
        if (bench && (!bench->isString() || bench->asString().empty()))
            ck.flag("\"bench\" must be a non-empty string");

        const Json *wall = ck.requireMember(doc, "wall_seconds");
        if (wall && (!wall->isNumber() || wall->asNumber(-1.0) < 0))
            ck.flag("\"wall_seconds\" must be a number >= 0");

        const Json *run = ck.requireMember(doc, "run");
        if (run) {
            if (!run->isObject()) {
                ck.flag("\"run\" must be an object");
            } else {
                for (const char *key :
                     {"git_sha", "config_hash", "hostname"}) {
                    const Json *v = ck.requireMember(*run, key);
                    if (v && (!v->isString() || v->asString().empty()))
                        ck.flag(std::string("\"run.") + key +
                                "\" must be a non-empty string");
                }
                ck.requireNonNegativeInteger(
                    ck.requireMember(*run, "unix_time"), "run.unix_time");
                const Json *cpu = ck.requireMember(*run, "cpu_seconds");
                if (cpu && (!cpu->isNumber() || cpu->asNumber(-1.0) < 0))
                    ck.flag("\"run.cpu_seconds\" must be a number >= 0");
            }
        }

        // "artifacts" is optional (absent in ledger-only runs) but must
        // be a map of non-empty path strings when present.
        if (const Json *artifacts = doc.find("artifacts")) {
            if (!artifacts->isObject()) {
                ck.flag("\"artifacts\" must be an object");
            } else {
                for (const auto &[key, v] : artifacts->members())
                    if (!v.isString() || v.asString().empty())
                        ck.flag("\"artifacts." + key +
                                "\" must be a non-empty path string");
            }
        }

        const Json *sweep = ck.requireMember(doc, "sweep");
        if (sweep) {
            if (!sweep->isObject()) {
                ck.flag("\"sweep\" must be an object");
            } else {
                for (const char *key :
                     {"machine_runs", "memory_cache_hits",
                      "disk_cache_hits"})
                    ck.requireNonNegativeInteger(
                        ck.requireMember(*sweep, key), key);
            }
        }

        const Json *results = ck.requireMember(doc, "results");
        if (results && !results->isObject())
            ck.flag("\"results\" must be an object");

        const Json *metrics = ck.requireMember(doc, "metrics");
        if (metrics) {
            if (!metrics->isObject()) {
                ck.flag("\"metrics\" must be an object");
            } else {
                for (const char *key :
                     {"counters", "gauges", "histograms"}) {
                    const Json *section =
                        ck.requireMember(*metrics, key);
                    if (section && !section->isObject())
                        ck.flag(std::string("\"metrics.") + key +
                                "\" must be an object");
                }
            }
        }
    }

    for (const std::string &p : ck.problems)
        std::fprintf(stderr, "%s: %s\n", path.c_str(), p.c_str());
    return ck.problems.empty();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
            const std::filesystem::path dir = argv[++i];
            std::error_code ec;
            for (const auto &entry :
                 std::filesystem::directory_iterator(dir, ec)) {
                const std::string name = entry.path().filename().string();
                if (name.rfind("BENCH_", 0) == 0 &&
                    entry.path().extension() == ".json")
                    files.push_back(entry.path().string());
            }
            if (ec) {
                std::fprintf(stderr, "%s: %s\n", dir.string().c_str(),
                             ec.message().c_str());
                return 1;
            }
        } else {
            files.emplace_back(argv[i]);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: bench_schema_check FILE... | --dir DIR\n"
                     "(no BENCH_*.json files found)\n");
        return 1;
    }

    int bad = 0;
    for (const std::string &f : files) {
        if (validate(f))
            std::printf("%s: ok\n", f.c_str());
        else
            ++bad;
    }
    if (bad)
        std::fprintf(stderr, "%d of %zu file(s) failed validation\n",
                     bad, files.size());
    return bad ? 1 : 0;
}
