/**
 * @file
 * laser_report — mine the persistent bench-run ledger (obs/ledger.h,
 * written when LASER_LEDGER is set) for perf trajectories, regression
 * gating and HTML reports.
 *
 *     laser_report show LEDGER [--bench NAME] [--metric NAME]
 *     laser_report compare LEDGER [--bench NAME] [--metrics m1,m2]
 *                  [--window N] [--iqr-mult X] [--rel-floor F]
 *                  [--abs-floor S]
 *     laser_report html LEDGER -o FILE.html
 *     laser_report inject LEDGER [--bench NAME] [--scale F]
 *
 * show prints each bench's gated duration metrics across runs (newest
 * last). compare gates each bench's most recent run against the median
 * of up to --window prior runs with an IQR-derived tolerance
 * (EXPERIMENTS.md "Gate math"):
 *
 *     regressed iff candidate > median + max(iqr-mult * IQR,
 *                                            rel-floor * median,
 *                                            abs-floor)
 *
 * and exits 1 when anything regressed — the CI contract. html renders
 * a self-contained report (inline SVG sparklines per metric, links to
 * the Chrome trace-event files recorded under "artifacts"). inject
 * appends a copy of each selected bench's latest record with every
 * gated duration multiplied by --scale (default 2.0) — the synthetic
 * slowdown CI uses to prove the gate actually fires.
 *
 * Exit status: 0 ok, 1 regression found (compare only), 2 usage/IO.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/ledger.h"
#include "util/table.h"

using laser::TablePrinter;
using laser::fmtDouble;
using laser::obs::GateConfig;
using laser::obs::GateResult;
using laser::obs::Json;
using laser::obs::LedgerReadResult;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: laser_report show LEDGER [--bench NAME] [--metric NAME]\n"
        "       laser_report compare LEDGER [--bench NAME]\n"
        "                    [--metrics m1,m2] [--window N]\n"
        "                    [--iqr-mult X] [--rel-floor F]\n"
        "                    [--abs-floor S]\n"
        "       laser_report html LEDGER -o FILE.html\n"
        "       laser_report inject LEDGER [--bench NAME] [--scale F]\n");
    return 2;
}

/** Records grouped by bench name, preserving ledger (append) order. */
struct BenchHistory
{
    std::string bench;
    std::vector<const Json *> runs;
};

std::vector<BenchHistory>
groupByBench(const std::vector<Json> &records)
{
    std::vector<BenchHistory> groups;
    std::map<std::string, std::size_t> index;
    for (const Json &record : records) {
        const Json *bench = record.find("bench");
        if (!bench || !bench->isString() || bench->asString().empty())
            continue; // not a BENCH record; ignore foreign lines
        const std::string &name = bench->asString();
        auto [it, inserted] = index.emplace(name, groups.size());
        if (inserted)
            groups.push_back({name, {}});
        groups[it->second].runs.push_back(&record);
    }
    return groups;
}

LedgerReadResult
readLedgerOrDie(const std::string &path)
{
    LedgerReadResult ledger = laser::obs::readLedger(path);
    if (!ledger.ok) {
        std::fprintf(stderr, "laser_report: %s\n", ledger.error.c_str());
        std::exit(2);
    }
    if (ledger.corruptLines > 0)
        std::fprintf(stderr,
                     "laser_report: warning: skipped %zu unparseable "
                     "ledger line(s)\n",
                     ledger.corruptLines);
    return ledger;
}

std::string
shortSha(const Json &record)
{
    if (const Json *run = record.find("run"))
        if (const Json *sha = run->find("git_sha"); sha && sha->isString())
            return sha->asString().substr(0, 7);
    return "-";
}

std::string
runTimestamp(const Json &record)
{
    if (const Json *run = record.find("run")) {
        if (const Json *t = run->find("unix_time"); t && t->isNumber()) {
            const std::time_t when =
                static_cast<std::time_t>(t->asNumber());
            char buf[32];
            std::tm tm{};
            if (gmtime_r(&when, &tm) &&
                std::strftime(buf, sizeof buf, "%Y-%m-%d %H:%M:%S", &tm))
                return buf;
        }
    }
    return "-";
}

/** Value of one gated metric in a record, NaN when absent. */
double
metricValue(const Json &record, const std::string &metric)
{
    for (const auto &[name, value] : laser::obs::gatedMetrics(record))
        if (name == metric)
            return value;
    return std::numeric_limits<double>::quiet_NaN();
}

/** Union of gated metric names across @p runs, first-seen order. */
std::vector<std::string>
metricNames(const std::vector<const Json *> &runs)
{
    std::vector<std::string> names;
    for (const Json *run : runs)
        for (const auto &[name, value] : laser::obs::gatedMetrics(*run))
            if (std::find(names.begin(), names.end(), name) ==
                names.end())
                names.push_back(name);
    return names;
}

// ---------------------------------------------------------------------
// show
// ---------------------------------------------------------------------

int
cmdShow(const std::string &path, const std::string &benchFilter,
        const std::string &metricFilter)
{
    const LedgerReadResult ledger = readLedgerOrDie(path);
    const std::vector<BenchHistory> groups =
        groupByBench(ledger.records);
    if (groups.empty()) {
        std::printf("ledger %s holds no bench records\n", path.c_str());
        return 0;
    }

    bool printed = false;
    for (const BenchHistory &group : groups) {
        if (!benchFilter.empty() && group.bench != benchFilter)
            continue;
        std::vector<std::string> metrics = metricNames(group.runs);
        if (!metricFilter.empty()) {
            metrics.erase(std::remove_if(metrics.begin(), metrics.end(),
                                         [&](const std::string &m) {
                                             return m != metricFilter;
                                         }),
                          metrics.end());
            if (metrics.empty())
                continue;
        }

        std::printf("\n%s (%zu run%s)\n", group.bench.c_str(),
                    group.runs.size(),
                    group.runs.size() == 1 ? "" : "s");
        std::vector<std::string> headers = {"run", "utc time", "sha"};
        headers.insert(headers.end(), metrics.begin(), metrics.end());
        TablePrinter table(headers);
        for (std::size_t i = 0; i < group.runs.size(); ++i) {
            const Json &record = *group.runs[i];
            std::vector<std::string> row = {std::to_string(i + 1),
                                            runTimestamp(record),
                                            shortSha(record)};
            for (const std::string &metric : metrics) {
                const double v = metricValue(record, metric);
                row.push_back(std::isnan(v) ? "-" : fmtDouble(v, 3));
            }
            table.addRow(std::move(row));
        }
        std::fputs(table.render().c_str(), stdout);
        printed = true;
    }
    if (!printed && !benchFilter.empty()) {
        std::fprintf(stderr, "laser_report: no records for bench %s\n",
                     benchFilter.c_str());
        return 2;
    }
    return 0;
}

// ---------------------------------------------------------------------
// compare
// ---------------------------------------------------------------------

bool
metricSelected(const std::string &name,
               const std::vector<std::string> &filter)
{
    if (filter.empty())
        return true;
    return std::find(filter.begin(), filter.end(), name) != filter.end();
}

int
cmdCompare(const std::string &path, const std::string &benchFilter,
           const std::vector<std::string> &metricFilter,
           const GateConfig &cfg)
{
    const LedgerReadResult ledger = readLedgerOrDie(path);
    const std::vector<BenchHistory> groups =
        groupByBench(ledger.records);

    TablePrinter table({"bench", "metric", "n", "median", "iqr",
                        "limit", "candidate", "verdict"});
    bool regressed = false;
    std::size_t compared = 0;
    for (const BenchHistory &group : groups) {
        if (!benchFilter.empty() && group.bench != benchFilter)
            continue;
        if (group.runs.size() < 2)
            continue; // nothing to compare against yet
        const Json &candidate = *group.runs.back();
        for (const auto &[metric, value] :
             laser::obs::gatedMetrics(candidate)) {
            if (!metricSelected(metric, metricFilter))
                continue;
            std::vector<double> baseline;
            for (std::size_t i = 0; i + 1 < group.runs.size(); ++i) {
                const double v = metricValue(*group.runs[i], metric);
                if (!std::isnan(v))
                    baseline.push_back(v);
            }
            if (baseline.empty())
                continue;
            const GateResult verdict =
                laser::obs::evaluateGate(baseline, value, cfg);
            ++compared;
            regressed |= verdict.regressed;
            table.addRow({group.bench, metric,
                          std::to_string(verdict.baselineRuns),
                          fmtDouble(verdict.baselineMedian, 3),
                          fmtDouble(verdict.baselineIqr, 3),
                          fmtDouble(verdict.threshold, 3),
                          fmtDouble(verdict.candidate, 3),
                          verdict.regressed ? "REGRESSED" : "ok"});
        }
    }

    if (compared == 0) {
        // A gate that silently has nothing to gate is worse than no
        // gate; say so loudly but pass (first runs have no baseline).
        std::fprintf(stderr,
                     "laser_report: warning: no bench in %s has both a "
                     "baseline and a candidate run; nothing gated\n",
                     path.c_str());
        return 0;
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\ngate: candidate > median + max(%.2f*IQR, "
                "%.2f*median, %.2fs) over last %zu run(s)\n",
                cfg.iqrMult, cfg.relFloor, cfg.absFloor, cfg.window);
    if (regressed) {
        std::printf("verdict: REGRESSION detected\n");
        return 1;
    }
    std::printf("verdict: all %zu metric(s) within noise\n", compared);
    return 0;
}

// ---------------------------------------------------------------------
// html
// ---------------------------------------------------------------------

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        case '"': out += "&quot;"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

/** Inline SVG sparkline over @p values (NaN samples are skipped). */
std::string
sparkline(const std::vector<double> &values)
{
    constexpr double kWidth = 260.0;
    constexpr double kHeight = 48.0;
    constexpr double kPad = 4.0;

    std::vector<std::pair<std::size_t, double>> points;
    for (std::size_t i = 0; i < values.size(); ++i)
        if (!std::isnan(values[i]))
            points.emplace_back(i, values[i]);
    if (points.empty())
        return "<svg width=\"260\" height=\"48\"></svg>";

    double lo = points.front().second;
    double hi = lo;
    for (const auto &[i, v] : points) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double span = hi - lo;
    const double denom =
        values.size() > 1 ? double(values.size() - 1) : 1.0;

    std::string svg = "<svg width=\"260\" height=\"48\" "
                      "viewBox=\"0 0 260 48\">";
    std::string poly;
    for (const auto &[i, v] : points) {
        const double x =
            kPad + (kWidth - 2 * kPad) * double(i) / denom;
        const double y =
            span > 0.0
                ? kPad + (kHeight - 2 * kPad) * (1.0 - (v - lo) / span)
                : kHeight / 2;
        poly += fmtDouble(x, 1) + "," + fmtDouble(y, 1) + " ";
    }
    svg += "<polyline fill=\"none\" stroke=\"#2563eb\" "
           "stroke-width=\"1.5\" points=\"" +
           poly + "\"/>";
    // Emphasize the most recent sample: it is what compare gates.
    const double lastX =
        kPad + (kWidth - 2 * kPad) * double(points.back().first) / denom;
    const double lastY =
        span > 0.0 ? kPad + (kHeight - 2 * kPad) *
                                (1.0 - (points.back().second - lo) / span)
                   : kHeight / 2;
    svg += "<circle cx=\"" + fmtDouble(lastX, 1) + "\" cy=\"" +
           fmtDouble(lastY, 1) + "\" r=\"2.5\" fill=\"#dc2626\"/>";
    svg += "</svg>";
    return svg;
}

int
cmdHtml(const std::string &path, const std::string &outPath)
{
    const LedgerReadResult ledger = readLedgerOrDie(path);
    const std::vector<BenchHistory> groups =
        groupByBench(ledger.records);

    std::string html =
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
        "<title>LASER bench ledger report</title>\n<style>\n"
        "body{font:14px/1.5 system-ui,sans-serif;margin:2em;"
        "color:#111}\n"
        "h2{border-bottom:1px solid #ddd;padding-bottom:.2em}\n"
        "table{border-collapse:collapse;margin:.5em 0}\n"
        "td,th{padding:.25em .8em;text-align:left;"
        "border-bottom:1px solid #eee}\n"
        ".num{font-variant-numeric:tabular-nums}\n"
        ".links a{margin-right:.8em}\n"
        "</style></head><body>\n"
        "<h1>LASER bench ledger report</h1>\n"
        "<p>Ledger: <code>" +
        htmlEscape(path) + "</code> &middot; " +
        std::to_string(ledger.records.size()) + " record(s)</p>\n";

    for (const BenchHistory &group : groups) {
        html += "<h2>" + htmlEscape(group.bench) + "</h2>\n";
        html += "<table><tr><th>metric</th><th>trend (" +
                std::to_string(group.runs.size()) +
                " runs)</th><th>latest</th><th>min</th><th>max</th>"
                "</tr>\n";
        for (const std::string &metric : metricNames(group.runs)) {
            std::vector<double> values;
            for (const Json *run : group.runs)
                values.push_back(metricValue(*run, metric));
            double latest = std::numeric_limits<double>::quiet_NaN();
            double lo = std::numeric_limits<double>::quiet_NaN();
            double hi = lo;
            for (double v : values) {
                if (std::isnan(v))
                    continue;
                latest = v;
                lo = std::isnan(lo) ? v : std::min(lo, v);
                hi = std::isnan(hi) ? v : std::max(hi, v);
            }
            html += "<tr><td><code>" + htmlEscape(metric) +
                    "</code></td><td>" + sparkline(values) +
                    "</td><td class=num>" +
                    (std::isnan(latest) ? "-" : fmtDouble(latest, 3)) +
                    "</td><td class=num>" +
                    (std::isnan(lo) ? "-" : fmtDouble(lo, 3)) +
                    "</td><td class=num>" +
                    (std::isnan(hi) ? "-" : fmtDouble(hi, 3)) +
                    "</td></tr>\n";
        }
        html += "</table>\n";

        // Trace-event links from the latest run that recorded any.
        for (auto it = group.runs.rbegin(); it != group.runs.rend();
             ++it) {
            const Json *artifacts = (*it)->find("artifacts");
            if (!artifacts || !artifacts->isObject())
                continue;
            html += "<p class=links>latest artifacts: ";
            for (const auto &[key, value] : artifacts->members())
                if (value.isString())
                    html += "<a href=\"" + htmlEscape(value.asString()) +
                            "\">" + htmlEscape(key) + "</a>";
            html += "</p>\n";
            break;
        }
    }
    html += "</body></html>\n";

    std::ofstream out(outPath, std::ios::binary);
    if (!out || !(out << html)) {
        std::fprintf(stderr, "laser_report: cannot write %s\n",
                     outPath.c_str());
        return 2;
    }
    std::printf("wrote %s (%zu bench group(s))\n", outPath.c_str(),
                groups.size());
    return 0;
}

// ---------------------------------------------------------------------
// inject
// ---------------------------------------------------------------------

int
cmdInject(const std::string &path, const std::string &benchFilter,
          double scale)
{
    const LedgerReadResult ledger = readLedgerOrDie(path);
    const std::vector<BenchHistory> groups =
        groupByBench(ledger.records);

    std::size_t injected = 0;
    for (const BenchHistory &group : groups) {
        if (!benchFilter.empty() && group.bench != benchFilter)
            continue;
        Json record = *group.runs.back(); // deep copy of the latest run
        record.set("injected_scale", Json(scale));
        if (const Json *wall = record.find("wall_seconds");
            wall && wall->isNumber())
            record.set("wall_seconds", Json(wall->asNumber() * scale));
        if (const Json *run = record.find("run"); run && run->isObject()) {
            Json scaledRun = *run;
            if (const Json *cpu = run->find("cpu_seconds");
                cpu && cpu->isNumber())
                scaledRun.set("cpu_seconds",
                              Json(cpu->asNumber() * scale));
            record.set("run", std::move(scaledRun));
        }
        if (const Json *results = record.find("results");
            results && results->isObject()) {
            Json scaledResults = *results;
            for (const auto &[name, value] : results->members()) {
                static const std::string kSuffix = "_seconds";
                if (value.isNumber() && name.size() > kSuffix.size() &&
                    name.compare(name.size() - kSuffix.size(),
                                 kSuffix.size(), kSuffix) == 0)
                    scaledResults.set(name,
                                      Json(value.asNumber() * scale));
            }
            record.set("results", std::move(scaledResults));
        }
        if (!laser::obs::appendLedgerRecord(path, record)) {
            std::fprintf(stderr,
                         "laser_report: failed to append to %s\n",
                         path.c_str());
            return 2;
        }
        std::printf("injected %.2fx run for %s\n", scale,
                    group.bench.c_str());
        ++injected;
    }
    if (injected == 0) {
        std::fprintf(stderr, "laser_report: no bench matched\n");
        return 2;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    const std::string path = argv[2];

    std::string benchFilter;
    std::string metricFilter;
    std::string outPath;
    std::vector<std::string> metricsFilter;
    GateConfig cfg;
    double scale = 2.0;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--bench" && i + 1 < argc) {
            benchFilter = argv[++i];
        } else if (arg == "--metric" && i + 1 < argc) {
            metricFilter = argv[++i];
        } else if (arg == "--metrics" && i + 1 < argc) {
            std::string list = argv[++i];
            std::size_t start = 0;
            while (start <= list.size()) {
                const std::size_t comma = list.find(',', start);
                const std::string name = list.substr(
                    start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
                if (!name.empty())
                    metricsFilter.push_back(name);
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else if (arg == "--window" && i + 1 < argc) {
            cfg.window = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--iqr-mult" && i + 1 < argc) {
            cfg.iqrMult = std::atof(argv[++i]);
        } else if (arg == "--rel-floor" && i + 1 < argc) {
            cfg.relFloor = std::atof(argv[++i]);
        } else if (arg == "--abs-floor" && i + 1 < argc) {
            cfg.absFloor = std::atof(argv[++i]);
        } else if (arg == "-o" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--scale" && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else {
            return usage();
        }
    }

    if (cmd == "show")
        return cmdShow(path, benchFilter, metricFilter);
    if (cmd == "compare")
        return cmdCompare(path, benchFilter, metricsFilter, cfg);
    if (cmd == "html") {
        if (outPath.empty())
            return usage();
        return cmdHtml(path, outPath);
    }
    if (cmd == "inject")
        return cmdInject(path, benchFilter, scale);
    return usage();
}
