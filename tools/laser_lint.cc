/**
 * @file
 * laser_lint: the repository's static-analysis gate (see src/lint/lint.h
 * for the rule engine and the rule list).
 *
 * Usage:
 *   laser_lint [--root DIR] [--rules a,b] [PATH...]
 *   laser_lint --list-rules
 *
 * With no PATH arguments the tool lints the whole tree under --root
 * (default: the current directory): every *.h / *.cc under src/ tools/
 * bench/ tests/, minus tests/lint_fixtures/. Explicit PATHs are linted
 * as given (relative to --root).
 *
 * Output is one machine-readable line per finding:
 *   file:line: rule: message
 *
 * Exit status: 0 clean, 1 findings reported, 2 usage or I/O error.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--rules a,b] [PATH...]\n"
                 "       %s --list-rules\n",
                 argv0, argv0);
    return 2;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    laser::lint::Options options;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const laser::lint::RuleInfo &r : laser::lint::rules())
                std::printf("%-18s %s\n", r.name, r.summary);
            return 0;
        }
        if (arg == "--root") {
            if (++i >= argc)
                return usage(argv[0]);
            root = argv[i];
        } else if (arg == "--rules") {
            if (++i >= argc)
                return usage(argv[0]);
            options.enabledRules = splitCommas(argv[i]);
            for (const std::string &r : options.enabledRules)
                if (!laser::lint::isRule(r)) {
                    std::fprintf(stderr,
                                 "%s: unknown rule '%s' (see "
                                 "--list-rules)\n",
                                 argv[0], r.c_str());
                    return 2;
                }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    if (paths.empty())
        paths = laser::lint::collectFiles(root);
    if (paths.empty()) {
        std::fprintf(stderr,
                     "%s: no lintable files under '%s' (expected src/ "
                     "tools/ bench/ tests/)\n",
                     argv[0], root.c_str());
        return 2;
    }

    std::vector<laser::lint::SourceFile> files;
    files.reserve(paths.size());
    for (const std::string &p : paths) {
        laser::lint::SourceFile f;
        if (!laser::lint::loadFile(root, p, &f)) {
            std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0],
                         p.c_str());
            return 2;
        }
        files.push_back(std::move(f));
    }

    const std::vector<laser::lint::Finding> findings =
        laser::lint::lintFiles(files, options);
    for (const laser::lint::Finding &f : findings)
        std::printf("%s\n", f.str().c_str());
    if (!findings.empty()) {
        std::fprintf(stderr, "laser_lint: %zu finding(s) in %zu file(s)\n",
                     findings.size(), files.size());
        return 1;
    }
    return 0;
}
