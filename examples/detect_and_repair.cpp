/**
 * @file
 * End-to-end scenario on the paper's flagship bug: linear_regression's
 * falsely-shared lreg_args array (Figure 2). Runs the full LASER system
 * via the experiment harness, prints the detection report, the online
 * repair outcome and the manual-fix comparison (Figure 11's 16.9x).
 *
 *   ./examples/detect_and_repair [workload]
 */

#include <cstdio>
#include <string>

#include "core/accuracy.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace laser;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "linear_regression";
    const auto *w = workloads::findWorkload(name);
    if (!w) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }

    core::ExperimentRunner runner;
    core::RunResult native = runner.run(*w, core::Scheme::Native);
    core::RunResult laser = runner.run(*w, core::Scheme::Laser);
    core::RunResult fixed =
        w->info.hasManualFix ? runner.run(*w, core::Scheme::ManualFix)
                             : core::RunResult{};

    std::printf("== %s (%s) ==\n", w->info.name.c_str(),
                workloads::suiteName(w->info.suite));
    for (const auto &bug : w->info.bugs) {
        std::printf("known bug: %s [%s] — %s\n", bug.location.c_str(),
                    workloads::bugTypeName(bug.type),
                    bug.description.c_str());
    }

    std::printf("\n== detection report (top lines) ==\n");
    TablePrinter t({"location", "HITM/s", "type"});
    std::size_t shown = 0;
    for (const auto &line : laser.detection.lines) {
        if (shown++ >= 6)
            break;
        t.addRow({line.location, fmtDouble(line.hitmRate, 0),
                  detect::contentionTypeName(line.type)});
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf("\n== outcome ==\n");
    std::printf("native runtime:         %llu cycles\n",
                (unsigned long long)native.runtimeCycles);
    std::printf("under LASER:            %llu cycles (%.2fx)\n",
                (unsigned long long)laser.runtimeCycles,
                double(laser.runtimeCycles) /
                    double(native.runtimeCycles));
    if (laser.repairApplied) {
        std::printf("  online repair fired at %.0f%% of the run "
                    "(plan: %zu ops, est %.0f stores/flush)\n",
                    laser.repairTriggerFraction * 100,
                    laser.plan.instrumentedOps.size(),
                    laser.plan.estRatio());
    } else if (laser.detection.repairRequested) {
        std::printf("  repair requested but declined: %s\n",
                    laser.plan.reason.c_str());
    }
    if (w->info.hasManualFix) {
        std::printf("manual fix (guided by the report): %llu cycles "
                    "(%.1fx speedup)\n",
                    (unsigned long long)fixed.runtimeCycles,
                    double(native.runtimeCycles) /
                        double(fixed.runtimeCycles));
    }
    return 0;
}
