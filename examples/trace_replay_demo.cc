/**
 * @file
 * Minimal tour of the trace subsystem: capture one monitored run, write
 * it to disk, read it back, and replay the detector at two different
 * rate thresholds without re-simulating — the "adjust thresholds
 * offline" workflow of Section 4.
 */

#include <cstdio>

#include "trace/capture.h"
#include "trace/replay.h"
#include "trace/trace.h"
#include "workloads/workload.h"

using namespace laser;

int
main()
{
    const workloads::WorkloadDef *workload =
        workloads::findWorkload("linear_regression");

    // 1. Capture: the only expensive step (runs the machine simulator).
    const trace::Trace captured = trace::captureTrace(*workload);
    std::printf("captured %zu records in %llu cycles\n",
                captured.records.size(),
                (unsigned long long)captured.meta.runtimeCycles);

    // 2. Persist + reload (round-trips byte-exactly).
    const std::string path = "linear_regression_demo.ltrace";
    if (trace::writeTraceFile(captured, path) != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "write failed\n");
        return 1;
    }
    trace::TraceReader reader;
    if (reader.readFile(path) != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "read failed: %s\n", reader.error().c_str());
        return 1;
    }
    const trace::Trace loaded = reader.takeTrace();

    // 3. Replay the detector at two thresholds; no simulation happens.
    trace::TraceReplayer replayer(loaded);
    for (double threshold : {1000.0, 16000.0}) {
        const detect::DetectionReport report =
            replayer.replayAtThreshold(threshold);
        std::printf("threshold %6.0f HITMs/sec -> %zu reported lines\n",
                    threshold, report.lines.size());
    }
    std::remove(path.c_str());
    return 0;
}
