/**
 * @file
 * PEBS record inspection: run a read-write and a write-write sharing
 * microkernel with ground-truth retention and show exactly how precise
 * the HITM records are — a miniature of the paper's Figure 3 study and
 * a demonstration of why LASERDETECT's pipeline is built to tolerate
 * noisy records.
 *
 *   ./examples/pebs_characterization
 */

#include <cstdio>

#include "isa/assembler.h"
#include "pebs/monitor.h"
#include "sim/machine.h"
#include "util/table.h"

using namespace laser;
using namespace laser::isa;

namespace {

isa::Program
sharingKernel(bool write_write)
{
    Asm a(write_write ? "ww" : "rw");
    Asm::Label done = a.newLabel();
    Asm::Label t1 = a.newLabel();
    a.at(10).tid(R1);
    a.movi(R9, 1);
    a.bne(R1, R0, t1);
    a.movi(R2, 0x1500000);
    a.movi(R3, 3000);
    Asm::Label l0 = a.here();
    a.at(20).store(R2, 0, R3, 8);
    a.subi(R3, R3, 1);
    a.bne(R3, R0, l0);
    a.jmp(done);
    a.bind(t1);
    a.bne(R1, R9, done);
    a.movi(R2, 0x1500000);
    a.movi(R3, 3000);
    Asm::Label l1 = a.here();
    if (write_write)
        a.at(30).store(R2, 8, R3, 8); // disjoint word, same line
    else
        a.at(30).load(R4, R2, 0, 8);
    a.subi(R3, R3, 1);
    a.bne(R3, R0, l1);
    a.bind(done);
    a.halt();
    return a.finalize();
}

void
characterize(const char *label, bool write_write)
{
    isa::Program prog = sharingKernel(write_write);
    sim::MachineConfig mc;
    sim::Machine machine(prog, mc);
    pebs::PebsConfig pc;
    pc.sav = 1; // sampling off, like the paper's study
    pc.keepGroundTruth = true;
    pebs::PebsMonitor mon(machine.addressSpace(), prog.size(), mc.timing,
                          pc);
    machine.setPmuSink(&mon);
    machine.run();
    mon.finish();

    std::size_t n = mon.records().size();
    std::size_t addr_ok = 0, pc_ok = 0, pc_adj = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto &r = mon.records()[i];
        const auto &t = mon.truths()[i];
        addr_ok += r.dataAddr == t.trueAddr;
        const auto idx = machine.addressSpace().pcToIndex(r.pc);
        const auto tidx = machine.addressSpace().pcToIndex(t.truePc);
        pc_ok += idx == tidx;
        pc_adj += idx >= 0 && std::llabs(idx - tidx) <= 1;
    }
    std::printf("%s: %zu records | data address correct %5.1f%% | PC "
                "exact %5.1f%% | PC +-1 %5.1f%%\n",
                label, n, 100.0 * addr_ok / n, 100.0 * pc_ok / n,
                100.0 * pc_adj / n);
}

} // namespace

int
main()
{
    std::printf("HITM PEBS record precision (SAV=1, ground truth "
                "retained):\n\n");
    characterize("read-write sharing (Fig 1a, load-triggered records)",
                 false);
    characterize("write-write sharing (Fig 1c, store-triggered records)",
                 true);
    std::printf(
        "\nLoad-triggered records are precise enough to locate bugs; "
        "store-triggered ones are mostly noise. LASERDETECT therefore "
        "aggregates by source line (PC skid stays local), ignores "
        "addresses it cannot trust, and reports 'unknown' rather than "
        "guessing a contention type (Section 4).\n");
    return 0;
}
