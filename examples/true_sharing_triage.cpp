/**
 * @file
 * Triage scenario: true sharing cannot be repaired by padding or by the
 * SSB — the program must be restructured. This example runs the paper's
 * two novel true-sharing finds (dedup's single-lock queue, bodytrack's
 * ticket dispenser) plus kmeans, shows how LASERDETECT types the
 * contention, and why that matters for triage (Section 7.4.2).
 *
 *   ./examples/true_sharing_triage
 */

#include <cstdio>

#include "core/accuracy.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace laser;

int
main()
{
    core::ExperimentRunner runner;
    const char *names[] = {"dedup", "bodytrack", "kmeans", "volrend"};

    TablePrinter t({"workload", "hot line", "reported type", "repair?",
                    "manual-fix speedup", "triage"});
    for (const char *name : names) {
        const auto *w = workloads::findWorkload(name);
        core::RunResult native = runner.run(*w, core::Scheme::Native);
        core::RunResult laser = runner.run(*w, core::Scheme::Laser);

        std::string hot = "-", type = "-";
        if (!laser.detection.lines.empty()) {
            hot = laser.detection.lines[0].location;
            type = detect::contentionTypeName(
                core::reportedTypeForBug(w->info, laser.detection));
        }
        std::string repair = "not triggered";
        if (laser.repairApplied)
            repair = "applied";
        else if (laser.detection.repairRequested)
            repair = "declined";

        std::string fix_speedup = "-";
        std::string triage = "restructure the sharing";
        if (w->info.hasManualFix) {
            core::RunResult fixed =
                runner.run(*w, core::Scheme::ManualFix);
            fix_speedup = fmtTimes(double(native.runtimeCycles) /
                                   double(fixed.runtimeCycles));
        }
        if (std::string(name) == "dedup")
            triage = "replace single-lock queue (lock-free)";
        else if (std::string(name) == "bodytrack")
            triage = "fundamental to load balancing; keep";
        else if (std::string(name) == "kmeans")
            triage = "cache flag on stack; sums on worker stack";
        else if (std::string(name) == "volrend")
            triage = "batch counter increments";

        t.addRow({name, hot, type, repair, fix_speedup, triage});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf(
        "\nTrue sharing is typed so developers do not waste time padding "
        "data that is genuinely shared — and so LASERREPAIR never tries "
        "to \"fix\" it (Section 4.3: the type gates automatic repair).\n");
    return 0;
}
