/**
 * @file
 * Quickstart: detect and repair false sharing in a tiny program.
 *
 * Builds a two-thread kernel whose threads increment adjacent words of
 * the same cache line, runs it under LASER (PEBS monitoring + the
 * detection pipeline), prints the report, lets LASERREPAIR rewrite the
 * binary with a software store buffer, and shows the speedup.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "detect/detector.h"
#include "isa/assembler.h"
#include "pebs/monitor.h"
#include "repair/repairer.h"
#include "sim/machine.h"
#include "util/table.h"

using namespace laser;
using namespace laser::isa;

int
main()
{
    // ------------------------------------------------------------------
    // 1. A buggy program: two threads pound adjacent words of one line.
    // ------------------------------------------------------------------
    Asm a("quickstart", "worker.c");
    Asm::Label done = a.newLabel();
    a.at(10).tid(R1);
    a.movi(R9, 2);
    a.bge(R1, R9, done);          // threads 0 and 1 only
    a.at(12).movi(R2, 0x1000000); // &counters[0]
    a.muli(R3, R1, 8);
    a.add(R2, R2, R3);            // &counters[tid] — same cache line!
    a.movi(R4, 1);
    a.movi(R5, 40000);
    Asm::Label loop = a.here();
    a.at(20).addmem(R2, 0, R4, 8); // counters[tid]++  <- the bug
    a.at(21).subi(R5, R5, 1);
    a.bne(R5, R0, loop);
    a.bind(done);
    a.at(25).halt();
    isa::Program prog = a.finalize();

    // ------------------------------------------------------------------
    // 2. Run it under LASER: PEBS monitoring feeding the detector.
    // ------------------------------------------------------------------
    sim::MachineConfig mc;
    sim::Machine machine(prog, mc);
    pebs::PebsConfig pebs_cfg; // SAV = 19, the paper's default
    pebs::PebsMonitor monitor(machine.addressSpace(), prog.size(),
                              mc.timing, pebs_cfg);
    machine.setPmuSink(&monitor);
    sim::MachineStats native = machine.run();
    monitor.finish();

    detect::Detector detector(prog, machine.addressSpace(),
                              machine.addressSpace().renderProcMaps(),
                              mc.timing, {});
    detector.processAll(monitor.records());
    detect::DetectionReport report = detector.finish(native.cycles);

    std::printf("== LASERDETECT report ==\n");
    std::printf("HITM events: %llu, records: %llu (dropped: %llu "
                "spurious PCs, %llu stack addresses)\n",
                (unsigned long long)native.hitmTotal(),
                (unsigned long long)report.totalRecords,
                (unsigned long long)report.droppedPcFilter,
                (unsigned long long)report.droppedStackData);
    TablePrinter t({"location", "HITM/s", "type", "TS evts", "FS evts"});
    for (const auto &line : report.lines) {
        t.addRow({line.location, fmtDouble(line.hitmRate, 0),
                  detect::contentionTypeName(line.type),
                  std::to_string(line.tsEvents),
                  std::to_string(line.fsEvents)});
    }
    std::fputs(t.render().c_str(), stdout);

    // ------------------------------------------------------------------
    // 3. Repair: rewrite the binary with the software store buffer.
    // ------------------------------------------------------------------
    if (!report.repairRequested) {
        std::printf("\nrepair not requested (rate below threshold)\n");
        return 0;
    }
    repair::RepairOutcome fix =
        repair::repairProgram(prog, report.repairPcs);
    std::printf("\n== LASERREPAIR ==\nplan: %s (est. %0.f stores per "
                "flush, %zu ops instrumented)\n",
                fix.plan.reason.c_str(), fix.plan.estRatio(),
                fix.plan.instrumentedOps.size());
    if (!fix.plan.applied)
        return 0;

    sim::Machine repaired(fix.program, mc);
    sim::MachineStats rs = repaired.run();
    std::printf("native:   %llu cycles, %llu HITM events\n"
                "repaired: %llu cycles, %llu HITM events "
                "(%.1fx faster, %llux fewer HITMs)\n",
                (unsigned long long)native.cycles,
                (unsigned long long)native.hitmTotal(),
                (unsigned long long)rs.cycles,
                (unsigned long long)rs.hitmTotal(),
                double(native.cycles) / double(rs.cycles),
                (unsigned long long)(native.hitmTotal() /
                                     std::max<std::uint64_t>(
                                         1, rs.hitmTotal())));
    return 0;
}
